"""The ``classic`` resource model: the paper's Figure 2 physical tier.

A pool of identical CPU servers drains one global queue FCFS
(concurrency-control requests have priority), and the database is
uniformly partitioned across the disks: each object access selects a
disk uniformly at random and waits in that disk's FCFS queue.

This is the original hard-coded ``repro.core.physical.PhysicalModel``
behind the resource-model interface, bit-identical for fixed seeds
(golden-output verified in ``tests/resources/test_golden_parity.py``).
It keeps the in-band infinite-resources convention for backward
compatibility: ``num_cpus``/``num_disks`` of None makes the
corresponding resource infinite — the ``infinite`` model is the
explicit spelling of that branch.
"""

from repro.resources.base import ResourceModel


class ClassicResourceModel(ResourceModel):
    """CPU pool + uniformly partitioned disks (paper Figure 2)."""

    name = "classic"
