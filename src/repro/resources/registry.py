"""The resource-model registry: name → model class.

Mirrors :mod:`repro.cc.registry` for the physical tier: the engine
constructs whichever model ``SimulationParameters.resource_model``
names, so new resource scenarios plug in without forking the engine.
"""

from repro.resources.base import ResourceModel
from repro.resources.buffered import BufferedResourceModel
from repro.resources.classic import ClassicResourceModel
from repro.resources.distributed import DistributedResourceModel
from repro.resources.infinite import InfiniteResourceModel
from repro.resources.skewed import SkewedDisksResourceModel

_MODELS = {
    cls.name: cls
    for cls in (
        ClassicResourceModel,
        InfiniteResourceModel,
        BufferedResourceModel,
        SkewedDisksResourceModel,
        DistributedResourceModel,
    )
}


def resource_model_names():
    """Sorted names of every registered resource model."""
    return sorted(_MODELS)


def create_resource_model(name, env, params, streams, bus=None):
    """Instantiate the resource model registered under ``name``."""
    try:
        cls = _MODELS[name]
    except KeyError:
        choices = ", ".join(resource_model_names())
        raise ValueError(
            f"unknown resource model {name!r}; choose from: {choices}"
        ) from None
    return cls(env, params, streams, bus=bus)


def register_resource_model(cls):
    """Register a :class:`~repro.resources.base.ResourceModel` subclass.

    The class must carry a unique non-empty ``name``. Returns the class
    so it can be used as a decorator.
    """
    if not getattr(cls, "name", None):
        raise ValueError(
            "resource model classes must define a non-empty 'name'"
        )
    _MODELS[cls.name] = cls
    return cls


__all__ = [
    "ResourceModel",
    "resource_model_names",
    "create_resource_model",
    "register_resource_model",
]
