"""The resource-model service interface (and its default machinery).

A *resource model* is the physical tier of the simulation: it decides
what CPU and I/O service an object access costs and which server queues
it waits in. The paper's central finding is that these assumptions —
infinite vs. finite vs. multiple resources — are what flipped earlier
studies' conclusions, so the physical tier is a first-class, pluggable
layer mirroring the concurrency-control registry
(:mod:`repro.cc.registry`): models register by name in
:mod:`repro.resources.registry` and the engine constructs whichever one
``SimulationParameters.resource_model`` names.

Service interface (what the engine consumes)
--------------------------------------------

Each service primitive returns a generator driven with ``yield from``
inside a transaction process, and is interrupt-safe: on abort
mid-service the partial service time is still charged and the server
released.

* ``read_access(tx, obj)`` — one pre-commit object read (I/O + CPU);
* ``write_request_work(tx, obj)`` — CPU work at write-request time;
* ``deferred_update(tx, obj)`` — one deferred update written at commit
  time;
* ``cc_request_work(tx)`` — CPU work for one concurrency-control
  request (priority class; no-op unless ``cc_cpu`` is set — callers
  check ``has_cc_work`` and skip the generator entirely);
* ``cpu_service(tx, amount, priority)`` / ``disk_service(tx, amount)``
  / ``disk_service_at(tx, disk_index, amount)`` — the raw legs the
  composites are built from.

Accounting and hooks:

* ``charge_attempt(tx, useful)`` — classify the attempt's consumed
  service time by outcome (drives the paper's total vs. useful
  utilization curves);
* ``cpu_tracker`` / ``disk_tracker`` — :class:`~repro.des.BusyTracker`
  utilization instruments;
* ``faults`` — optional :class:`~repro.faults.FaultInjector`, attached
  by its ``start()``; ``disk_fault_targets()`` names the finite disks a
  disk-fault process may claim (empty for infinite models);
* ``buffer_summary()`` — cache statistics for models with a buffer
  pool (None for models without one);
* ``describe_resources()`` — per-model resource labels for reports and
  diagnostics.

``obj`` — the object (page) id being accessed — is accepted by every
per-object primitive so placement- and cache-aware models can use it;
the classic model ignores it, which is what keeps it bit-identical to
the original hard-coded physical tier. ``obj=None`` (direct driving in
tests) falls back to object-blind behavior everywhere.

The default implementations in :class:`ResourceModel` are the paper's
Figure 2 model exactly as previously hard-coded in
``repro.core.physical``: a pool of identical CPU servers draining one
global queue FCFS (concurrency-control requests have priority), the
database uniformly partitioned across the disks, and
``num_cpus``/``num_disks`` of None modeling infinite resources
in-band. The service primitives are hot-path code: disk selections are
drawn in batches from the disk stream (same draws, same order as
one-at-a-time), timeouts are constructed directly, and request/release
pairing uses explicit try/finally — identical semantics, fewer calls
per service.
"""

from repro.des import BusyTracker, InfiniteResource, Resource
from repro.des.events import Timeout
from repro.obs.events import MSG_RECV, MSG_SEND, RESOURCE_BUSY, RESOURCE_IDLE

#: CPU queue priority classes: CC requests beat object processing.
CC_PRIORITY = 0
OBJECT_PRIORITY = 1

#: Disk selections drawn from the disk stream per refill. Batching only
#: amortizes call overhead; the value sequence is unchanged.
_DISK_PICK_BATCH = 256


class ResourceModel:
    """Base resource model: CPU pool + partitioned disks + accounting.

    Subclasses override :meth:`_resource_counts` (how many servers to
    instantiate), the service composites (``read_access`` /
    ``deferred_update``), or both. See the registered models:
    ``classic``, ``infinite``, ``buffered``, ``skewed_disks``.
    """

    #: Registry name; subclasses must set a unique non-empty string.
    name = None

    def __init__(self, env, params, streams, bus=None):
        self.env = env
        self.params = params
        #: Optional repro.obs.InstrumentationBus for resource busy/idle
        #: events; emission is guarded by its ``wants_resource`` flag so
        #: the unobserved case costs one attribute load per service.
        self.bus = bus
        self._streams = streams
        self._disk_rng = streams.stream("physical.disk_choice")
        self._disk_picks = []
        self._disk_pick_at = 0
        #: Optional repro.faults.FaultInjector; set by its start().
        #: None (the default) is the always-healthy physical model.
        self.faults = None
        #: False when ``cc_cpu`` is zero (the paper's tables): lets the
        #: engine skip the whole cc_request_work generator per request.
        self.has_cc_work = params.cc_cpu > 0.0
        #: Number of sites in the model's topology. Single-site models
        #: stay at 1 (node addressing collapses to the flat indices);
        #: the ``distributed`` model sets ``params.nodes``.
        self.nodes = 1
        #: Cross-node message accounting (count, summed delay). Stays
        #: zero for single-site models — ``network_summary`` reports
        #: None then, so their totals keep the exact pre-topology
        #: byte layout.
        self.messages_sent = 0
        self.network_time = 0.0
        self._network_rng = None
        self._build_resources()

    # -- construction hooks --------------------------------------------------

    def _resource_counts(self):
        """``(num_cpus, num_disks)`` to instantiate; None = infinite.

        The default honors the parameters as-is (the paper's in-band
        infinite-resources convention); the ``infinite`` model overrides
        this to force infinite servers regardless of the counts.
        """
        return self.params.num_cpus, self.params.num_disks

    def _build_resources(self):
        """Instantiate the server pools and their utilization trackers.

        The default is the paper's single-site tier: one pooled CPU
        queue and one flat disk list. Multi-site models override this to
        build per-node pools (keeping ``self.disks`` as the flattened
        node-major list so disk addressing, fault targeting and the
        utilization trackers stay uniform).
        """
        env = self.env
        num_cpus, num_disks = self._resource_counts()
        if num_cpus is None:
            self.cpu = InfiniteResource(env)
            cpu_capacity = float("inf")
        else:
            self.cpu = Resource(env, capacity=num_cpus)
            cpu_capacity = num_cpus

        if num_disks is None:
            self.disks = [InfiniteResource(env)]
            disk_capacity = float("inf")
        else:
            self.disks = [
                Resource(env, capacity=1) for _ in range(num_disks)
            ]
            disk_capacity = num_disks

        self.cpu_tracker = BusyTracker(env, "cpu", cpu_capacity)
        self.disk_tracker = BusyTracker(env, "disk", disk_capacity)

    # -- node addressing -----------------------------------------------------
    #
    # Every model is node-addressable; single-site models are the
    # degenerate one-node case, so placement-blind callers and the
    # invariant checker can use the same interface everywhere.

    def node_of(self, obj):
        """The node whose shard holds ``obj`` (always 0 single-site)."""
        return 0

    def home_node(self, tx):
        """The node a transaction originates at (always 0 single-site)."""
        return 0

    def global_disk_index(self, node, disk_index):
        """Flatten a (node, local disk) address into ``self.disks``."""
        return disk_index

    def cpu_capacity_at(self, node):
        """CPU servers at one node (the invariant checker's bound)."""
        return getattr(self.cpu, "capacity", float("inf"))

    def participant_nodes(self, tx):
        """Remote nodes a transaction touched (commit-protocol seam).

        Single-site models involve no remote participants, so a 2PC
        commit protocol composed with them degenerates to the atomic
        commit point.
        """
        return ()

    def network_leg(self, tx, src, dst):
        """One cross-node message: an explicit service stage.

        A message from ``src`` to ``dst`` waits an exponential
        ``params.network_delay`` drawn from the dedicated
        ``resources.network`` stream (the interconnect is modeled as a
        delay, not a queued server) and emits ``msg_send``/``msg_recv``
        bus events around the transfer. Local messages (``src == dst``)
        are free and draw nothing, which is what keeps one-node
        topologies bit-identical to the single-site models: no
        cross-node traffic can ever arise there.
        """
        if src == dst:
            return
        bus = self.bus
        if bus is not None:
            bus.emit(MSG_SEND, tx=tx, src=src, dst=dst)
        self.messages_sent += 1
        delay = self.params.network_delay
        if delay > 0.0:
            if self._network_rng is None:
                self._network_rng = self._streams.stream(
                    "resources.network"
                )
            delay = self._network_rng.exponential(delay)
            self.network_time += delay
            yield Timeout(self.env, delay)
        if bus is not None:
            bus.emit(MSG_RECV, tx=tx, src=src, dst=dst)

    def network_summary(self):
        """Message accounting, or None when no cross-node traffic ran.

        The conditional-None convention mirrors ``buffer_summary``: a
        run with zero messages adds no totals key, so single-site runs
        (and one-node distributed runs, which can never send) keep
        their exact byte layout.
        """
        if not self.messages_sent:
            return None
        return {
            "messages": self.messages_sent,
            "network_time": self.network_time,
            "mean_delay": self.network_time / self.messages_sent,
        }

    # -- service primitives -------------------------------------------------
    #
    # Each returns a generator to be driven with ``yield from`` inside a
    # transaction process. They are interrupt-safe: on abort mid-service
    # the partial service time is still charged and the server released.

    def cpu_service(self, tx, amount, priority=OBJECT_PRIORITY):
        """Hold one CPU server for ``amount`` seconds.

        Under an injected CPU degradation window the demand is
        multiplied by the factor in effect when service *starts* (a
        window boundary does not stretch service already in progress).
        """
        if amount <= 0.0:
            return
        if self.faults is not None:
            amount *= self.faults.cpu_factor
        env = self.env
        bus = self.bus
        tracker = self.cpu_tracker
        request = self.cpu.request(priority=priority)
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="cpu", tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_cpu_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="cpu", tx=tx)
        finally:
            self.cpu.release(request)

    def _pick_disk(self):
        """Index of a uniformly chosen disk (batched draws)."""
        at = self._disk_pick_at
        picks = self._disk_picks
        if at >= len(picks):
            self._disk_picks = picks = self._disk_rng.uniform_int_many(
                0, len(self.disks) - 1, _DISK_PICK_BATCH
            )
            at = 0
        self._disk_pick_at = at + 1
        return picks[at]

    def disk_service(self, tx, amount):
        """Hold a uniformly chosen disk for ``amount`` seconds."""
        if amount <= 0.0:
            return
        yield from self.disk_service_at(tx, self._pick_disk(), amount)

    def disk_service_at(self, tx, disk_index, amount, node=None):
        """Hold disk ``disk_index`` for ``amount`` seconds.

        The placement-aware leg: callers that map objects to specific
        spindles (``skewed_disks``) or that decide queueing per access
        (``buffered``) pick the index themselves. With ``node`` given,
        ``disk_index`` is local to that node and is flattened through
        :meth:`global_disk_index` (the node-addressed spelling used by
        multi-site models); None keeps the flat single-site addressing.
        """
        if amount <= 0.0:
            return
        if node is not None:
            disk_index = self.global_disk_index(node, disk_index)
        env = self.env
        bus = self.bus
        tracker = self.disk_tracker
        disk = self.disks[disk_index]
        request = disk.request()
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="disk", disk=disk_index, tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_disk_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="disk", disk=disk_index, tx=tx)
        finally:
            disk.release(request)

    # -- model-level composites -----------------------------------------------
    #
    # The composites inline the disk/cpu service bodies instead of
    # delegating with ``yield from``: an object access is the single
    # most-executed code path of a simulator, and the flattened form
    # creates one generator per access instead of three. The yields,
    # their order, and the interrupt-time accounting are exactly those
    # of ``disk_service`` followed by ``cpu_service``.

    def read_access(self, tx, obj=None):
        """Read one object: obj_io of disk, then obj_cpu of CPU.

        With fault injection, the access may fault first (raising
        RestartTransaction before any service is consumed).
        """
        faults = self.faults
        if faults is not None:
            faults.check_access_fault(tx)
        env = self.env
        bus = self.bus
        params = self.params

        amount = params.obj_io
        if amount > 0.0:
            disk_index = self._pick_disk()
            tracker = self.disk_tracker
            disk = self.disks[disk_index]
            request = disk.request()
            try:
                yield request
                tracker.acquire()
                if bus is not None and bus.wants_resource:
                    bus.emit(
                        RESOURCE_BUSY, resource="disk",
                        disk=disk_index, tx=tx,
                    )
                start = env._now
                try:
                    yield Timeout(env, amount)
                finally:
                    tracker.release()
                    tx.attempt_disk_time += env._now - start
                    if bus is not None and bus.wants_resource:
                        bus.emit(
                            RESOURCE_IDLE, resource="disk",
                            disk=disk_index, tx=tx,
                        )
            finally:
                disk.release(request)

        amount = params.obj_cpu
        if amount <= 0.0:
            return
        if faults is not None:
            amount *= faults.cpu_factor
        tracker = self.cpu_tracker
        request = self.cpu.request(priority=OBJECT_PRIORITY)
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="cpu", tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_cpu_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="cpu", tx=tx)
        finally:
            self.cpu.release(request)

    def write_request_work(self, tx, obj=None):
        """CPU work at write-request time (updates are deferred).

        Subject to transient access faults like reads; deferred updates
        at commit time are not (past the commit point the transaction
        can no longer abort).
        """
        if self.faults is not None:
            self.faults.check_access_fault(tx)
        yield from self.cpu_service(tx, self.params.obj_cpu)

    def deferred_update(self, tx, obj=None):
        """Write one deferred update to disk at commit time."""
        yield from self.disk_service(tx, self.params.obj_io)

    def cc_request_work(self, tx):
        """CPU work for one concurrency-control request (priority class).

        Zero in the paper's parameter tables, so this is a no-op unless
        ``cc_cpu`` is set (callers can check ``has_cc_work`` and skip
        the generator entirely).
        """
        yield from self.cpu_service(tx, self.params.cc_cpu, CC_PRIORITY)

    # -- attempt outcome accounting ----------------------------------------------

    def charge_attempt(self, tx, useful):
        """Classify the attempt's consumed service time by outcome."""
        self.cpu_tracker.record_outcome(tx.attempt_cpu_time, useful)
        self.disk_tracker.record_outcome(tx.attempt_disk_time, useful)

    # -- fault, cache and labelling hooks -----------------------------------------

    def disk_fault_targets(self):
        """``[(index, disk)]`` a disk-fault process may crash.

        Only finite (queued) disks are meaningful targets: claiming an
        :class:`~repro.des.InfiniteResource` blocks nobody, so infinite
        configurations return an empty list and the fault injector
        refuses disk-fault specs against them.
        """
        if isinstance(self.disks[0], InfiniteResource):
            return []
        return list(enumerate(self.disks))

    def buffer_summary(self):
        """Cache statistics, or None for models without a buffer pool."""
        return None

    def describe_resources(self):
        """Per-model resource labels (reports, diagnostics)."""
        num_cpus, num_disks = self._resource_counts()
        return {
            "model": self.name,
            "cpus": "inf" if num_cpus is None else num_cpus,
            "disks": "inf" if num_disks is None else num_disks,
        }

    def __repr__(self):
        labels = self.describe_resources()
        return (
            f"<{type(self).__name__} {labels['model']} "
            f"cpus={labels['cpus']} disks={labels['disks']}>"
        )
