"""The instrumentation bus: one emission point, pluggable consumers.

The engine (and the physical model and fault injector behind it) emits
every operational event exactly once, through one bus; metrics, traces,
committed-history recording, fault accounting, time-series sampling and
JSONL streaming are all *subscribers*. New measurement needs plug into
the bus instead of threading yet another collector through the engine.

Design constraints, in order:

1. **Zero cost for unobserved kinds.** Emission starts with one dict
   lookup; a kind nobody subscribed to returns immediately, and the
   hot emitters additionally consult the precomputed ``wants_*`` flags
   *before building the event's fields*, so an idle kind allocates
   nothing at all.
2. **Synchronous, deterministic dispatch.** Handlers run inline, in
   subscriber attach order, at the simulated instant of the event.
   Subscribers only *observe* — they must not mutate model state — so
   attaching any set of them leaves a fixed-seed run's results
   bit-identical (tested in ``tests/obs/test_parity.py``).
3. **Per-kind handler tables.** At attach time each subscriber's
   handlers are folded into ``kind -> (handler, ...)`` tuples, so an
   emission never iterates subscribers that do not care about its kind.

Subscriber protocol (duck-typed; :class:`~repro.obs.subscribers.
Subscriber` is a convenience base):

* ``handlers() -> {kind: callable(time, fields)}`` — required; the
  bus calls it once per attach/detach cycle.
* ``on_attach(bus, model)`` — optional; called after registration with
  the owning :class:`~repro.core.engine.SystemModel` (``None`` when the
  bus is used standalone). Subscribers that need their own simulation
  process (e.g. periodic samplers) start it here.
"""

from repro.obs.events import CC_GRANT, RESOURCE_BUSY, RESOURCE_IDLE, TX_COMMIT_POINT


class InstrumentationBus:
    """Synchronous, typed event dispatch for one simulation run."""

    __slots__ = (
        "env",
        "subscribers",
        "_handlers",
        "wants_commit_point",
        "wants_resource",
        "wants_cc",
    )

    def __init__(self, env):
        self.env = env
        self.subscribers = []
        self._handlers = {}
        self._refresh_flags()

    # -- subscription --------------------------------------------------------

    def attach(self, subscriber, model=None):
        """Register ``subscriber`` and return it.

        ``model`` is forwarded to the subscriber's optional
        ``on_attach`` hook so samplers can reach the instruments and
        start their own processes.
        """
        self.subscribers.append(subscriber)
        self._rebuild()
        on_attach = getattr(subscriber, "on_attach", None)
        if on_attach is not None:
            on_attach(self, model)
        return subscriber

    def detach(self, subscriber):
        """Unregister ``subscriber`` (ValueError if never attached)."""
        self.subscribers.remove(subscriber)
        self._rebuild()

    def _rebuild(self):
        table = {}
        for subscriber in self.subscribers:
            for kind, handler in subscriber.handlers().items():
                table.setdefault(kind, []).append(handler)
        self._handlers = {
            kind: tuple(handlers) for kind, handlers in table.items()
        }
        self._refresh_flags()

    def _refresh_flags(self):
        # Precomputed fast-path flags: the engine and physical model
        # check these before building fields for high-volume optional
        # kinds, so an unobserved kind costs one attribute load.
        self.wants_commit_point = TX_COMMIT_POINT in self._handlers
        self.wants_resource = (
            RESOURCE_BUSY in self._handlers
            or RESOURCE_IDLE in self._handlers
        )
        self.wants_cc = CC_GRANT in self._handlers

    # -- emission ------------------------------------------------------------

    def wants(self, kind):
        """True when at least one subscriber handles ``kind``."""
        return kind in self._handlers

    def emit(self, kind, **fields):
        """Dispatch one event to every handler of ``kind``.

        A kind with no handlers returns after a single dict lookup.
        Handlers receive ``(now, fields)`` — the kind is bound into the
        handler at registration time.
        """
        handlers = self._handlers.get(kind)
        if handlers:
            now = self.env.now
            for handler in handlers:
                handler(now, fields)

    def __repr__(self):
        return (
            f"<InstrumentationBus subscribers={len(self.subscribers)} "
            f"kinds={sorted(self._handlers)}>"
        )
