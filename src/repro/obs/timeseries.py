"""Periodic time-series sampling of queue populations and utilization.

The paper's closed model (Figures 1-2) is characterized operationally
by its queue populations — terminals, ready queue, active set — and by
resource busyness. Batch means report their *averages*; the
:class:`TimeSeriesSampler` records their *trajectories*, which is what
you want when a point misbehaves (is the ready queue growing? did a
disk crash empty the active set?).

The sampler is a bus subscriber with its own simulation process: it
consumes no events (it reads the instruments directly at each tick)
and optionally *emits* one ``sample`` event per tick so downstream
subscribers — e.g. a :class:`~repro.obs.jsonl.JsonlSink` — can stream
the rows. Sampling draws no random numbers and mutates nothing, so it
never perturbs a run's results.
"""

from repro.obs.events import SAMPLE

#: Column order of one sample row (also the CSV column order used by
#: :func:`repro.experiments.export.timeseries_to_rows`).
SAMPLE_FIELDS = (
    "time",
    "active",
    "ready_queue",
    "cpu_busy",
    "disk_busy",
    "commits",
    "restarts",
    "blocks",
)


class TimeSeriesSampler:
    """Samples model instruments every ``interval`` simulated seconds.

    ``active``/``ready_queue`` are instantaneous populations,
    ``cpu_busy``/``disk_busy`` are busy-server counts, and
    ``commits``/``restarts``/``blocks`` are cumulative totals (diff
    adjacent rows for per-interval rates). Rows accumulate in columnar
    form; :meth:`series` returns them as ``{field: [values]}``, which
    is the JSON layout persisted in sweep diagnostics.
    """

    def __init__(self, interval=1.0, emit_events=True):
        if interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        #: Re-emit each row as a ``sample`` event (only actually
        #: dispatched when some other subscriber wants them).
        self.emit_events = emit_events
        self._series = {field: [] for field in SAMPLE_FIELDS}
        self._bus = None
        self._model = None

    # -- subscriber protocol -------------------------------------------------

    def handlers(self):
        return {}

    def on_attach(self, bus, model):
        if model is None:
            raise ValueError(
                "TimeSeriesSampler needs the owning SystemModel; attach "
                "it via SystemModel(..., subscribers=...) or "
                "bus.attach(sampler, model=model)"
            )
        self._bus = bus
        self._model = model
        model.env.process(self._run())

    # -- sampling ------------------------------------------------------------

    def _run(self):
        env = self._model.env
        while True:
            self._take_sample(env.now)
            yield env.timeout(self.interval)

    def _take_sample(self, now):
        metrics = self._model.metrics
        physical = self._model.physical
        row = {
            "time": now,
            "active": metrics.active_level.value,
            "ready_queue": metrics.ready_queue_level.value,
            "cpu_busy": physical.cpu_tracker.busy_now,
            "disk_busy": physical.disk_tracker.busy_now,
            "commits": metrics.commits.total,
            "restarts": metrics.restarts.total,
            "blocks": metrics.blocks.total,
        }
        series = self._series
        for field, value in row.items():
            series[field].append(value)
        if self.emit_events and self._bus.wants(SAMPLE):
            self._bus.emit(SAMPLE, **row)

    # -- results -------------------------------------------------------------

    def __len__(self):
        return len(self._series["time"])

    def series(self):
        """Columnar copy of everything sampled so far."""
        return {field: list(values) for field, values in self._series.items()}

    def rows(self):
        """The samples as a list of per-tick dicts."""
        series = self._series
        return [
            {field: series[field][i] for field in SAMPLE_FIELDS}
            for i in range(len(self))
        ]
