"""repro.obs — the unified instrumentation layer.

One typed event stream (:class:`InstrumentationBus`) carries every
operational signal out of the engine — transaction lifecycle,
concurrency-control decisions, resource busy/idle, fault events — and
pluggable subscribers turn it into metrics, traces, committed-history
records, fault accounting, time-series samples, and streaming JSONL.

See DESIGN.md §11 for the architecture, the event taxonomy, the
subscriber protocol, and the overhead guarantees.
"""

from repro.obs import events
from repro.obs.bus import InstrumentationBus
from repro.obs.invariants import (
    INVARIANT_MODES,
    InvariantChecker,
    InvariantViolation,
    InvariantViolationError,
    resolve_invariant_mode,
)
from repro.obs.events import (
    ALL_KINDS,
    BUFFER_KINDS,
    FAULT_KINDS,
    LIFECYCLE_KINDS,
    RESOURCE_KINDS,
)
from repro.obs.jsonl import JsonlSink, read_jsonl
from repro.obs.subscribers import (
    BufferAccountingSubscriber,
    FaultAccountingSubscriber,
    HistorySubscriber,
    MetricsSubscriber,
    Subscriber,
    TraceSubscriber,
    scalar_fields,
)
from repro.obs.timeseries import SAMPLE_FIELDS, TimeSeriesSampler

__all__ = [
    "InstrumentationBus",
    "InvariantChecker",
    "InvariantViolation",
    "InvariantViolationError",
    "INVARIANT_MODES",
    "resolve_invariant_mode",
    "Subscriber",
    "MetricsSubscriber",
    "TraceSubscriber",
    "HistorySubscriber",
    "FaultAccountingSubscriber",
    "BufferAccountingSubscriber",
    "TimeSeriesSampler",
    "JsonlSink",
    "read_jsonl",
    "scalar_fields",
    "events",
    "ALL_KINDS",
    "LIFECYCLE_KINDS",
    "FAULT_KINDS",
    "RESOURCE_KINDS",
    "BUFFER_KINDS",
    "SAMPLE_FIELDS",
]
