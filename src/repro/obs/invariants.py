"""Runtime invariant checking: the simulation audits itself as it runs.

The paper's conclusions rest on the simulator's internal bookkeeping
being exactly right — a silent conservation-law violation corrupts an
entire experiment grid without changing the shape of any curve enough
to notice. :class:`InvariantChecker` is an :class:`~repro.obs.bus.
InstrumentationBus` subscriber that continuously enforces the model's
structural identities on the *existing* event stream (no new emission
points), so any run can be audited by attaching it:

* **transaction conservation** — every transaction ever submitted is,
  at every instant, in exactly one of: the ready queue, the active set,
  restart limbo (aborted, not yet resubmitted), or committed; the
  per-transaction lifecycle automaton (submit -> admit -> commit |
  restart -> resubmit -> ...) admits no other move;
* **flow balance under re-entry** — workload models with feedback
  routing (the ``trace`` model) may submit a *new* transaction when an
  old one completes; each re-entry carries ``reentry_of``, so the
  conservation identity generalizes per routing class: re-entries
  never exceed completions, and a class never completes more
  transactions than it submitted;
* **simulated-clock monotonicity** — event timestamps never decrease;
* **admission control** — an admission never exceeds the (possibly
  adaptively retuned) multiprogramming limit in force when it happens;
* **resource busy/idle pairing** — every server's busy count moves in
  matched +1/-1 steps, never below zero and never above the server
  pool's capacity (utilization <= capacity);
* **lock-grant exclusivity** — for the blocking (strict 2PL) algorithm,
  a granted write on an object excludes every other holder and a
  granted read excludes foreign writers, between grant and
  commit/abort;
* **commit-point ordering** — a transaction commits only after exactly
  one commit point in its final attempt, and can no longer restart once
  its writes are installed;
* **message pairing** — across the network legs of a multi-site run,
  deliveries never outnumber sends (each ``msg_recv`` pairs with an
  earlier ``msg_send``);
* **two-phase-commit quorum** — every vote answers an outstanding
  prepare, a commit decision is recorded only once every prepared
  participant has voted (its ``quorum`` equals the prepare count), and
  a transaction neither completes with an undecided prepare window
  open nor restarts without discarding it.

Modes: ``strict`` raises :class:`InvariantViolationError` at the
violating event; ``warn`` records every violation (capped) and lets the
run finish. Either way the structured records flow into
``SimulationResult.diagnostics["invariants"]`` so they persist through
checkpoints and saved sweeps.

The checker is a pure observer: attaching it leaves a fixed-seed run's
results bit-identical (it only reads event fields), and leaving it off
costs nothing — the bus's ``wants_*`` fast-path flags mean the engine
never even builds fields for the high-volume kinds nobody subscribed
to.
"""

from repro.obs.events import (
    CC_GRANT,
    MSG_RECV,
    MSG_SEND,
    RESOURCE_BUSY,
    RESOURCE_IDLE,
    TWO_PC_DECIDE,
    TWO_PC_PREPARE,
    TWO_PC_VOTE,
    TX_ADMIT,
    TX_BLOCK,
    TX_COMMIT_POINT,
    TX_COMPLETE,
    TX_RESTART,
    TX_RESUBMIT,
    TX_SUBMIT,
)

__all__ = [
    "INVARIANT_MODES",
    "InvariantChecker",
    "InvariantViolation",
    "InvariantViolationError",
    "resolve_invariant_mode",
]

#: Accepted values of every ``invariants=`` knob (CLI, env, API).
INVARIANT_MODES = ("strict", "warn", "off")

#: Environment variable consulted when no explicit mode is passed —
#: lets CI run an unmodified test suite with checking enabled.
INVARIANTS_ENV = "REPRO_INVARIANTS"

#: ``warn`` mode stops recording after this many violations so a
#: systematically broken run cannot exhaust memory with records.
MAX_RECORDED_VIOLATIONS = 100

# Transaction phases of the conservation automaton.
_READY = "ready"
_ACTIVE = "active"
_LIMBO = "limbo"  # restarted, not yet resubmitted


class InvariantViolation:
    """One structured violation record (JSON-serializable via dict())."""

    __slots__ = ("time", "invariant", "message", "details")

    def __init__(self, time, invariant, message, details=None):
        self.time = time
        self.invariant = invariant
        self.message = message
        self.details = details or {}

    def to_dict(self):
        return {
            "time": self.time,
            "invariant": self.invariant,
            "message": self.message,
            "details": self.details,
        }

    def __repr__(self):
        return (
            f"<InvariantViolation {self.invariant} t={self.time:.6g}: "
            f"{self.message}>"
        )


class InvariantViolationError(AssertionError):
    """A simulation invariant broke (strict mode).

    Subclasses :class:`AssertionError` deliberately: a violation means
    the *harness* is wrong, not the configuration, so it must never be
    degraded to a retryable per-point failure.
    """

    def __init__(self, violation):
        super().__init__(
            f"invariant {violation.invariant!r} violated at "
            f"t={violation.time:.6g}: {violation.message}"
        )
        self.violation = violation


def resolve_invariant_mode(mode=None, environ=None):
    """Normalize an ``invariants=`` knob to one of :data:`INVARIANT_MODES`.

    ``None`` falls back to the ``REPRO_INVARIANTS`` environment
    variable, then to ``"off"`` — so exporting the variable turns
    checking on for an unmodified test suite or script.
    """
    if mode is None:
        import os

        source = environ if environ is not None else os.environ
        mode = source.get(INVARIANTS_ENV) or "off"
    if mode not in INVARIANT_MODES:
        raise ValueError(
            f"invariants mode must be one of {INVARIANT_MODES}, "
            f"got {mode!r}"
        )
    return mode


class InvariantChecker:
    """Bus subscriber enforcing the model's structural identities.

    ``mode`` is ``"strict"`` (raise at the violating event) or
    ``"warn"`` (record and continue). ``check_locks`` forces the
    lock-exclusivity invariant on or off; the default (None) enables it
    automatically when the attached model runs the blocking algorithm.
    """

    def __init__(self, mode="strict", check_locks=None):
        if mode not in ("strict", "warn"):
            raise ValueError(
                f"mode must be 'strict' or 'warn', got {mode!r}"
            )
        self.mode = mode
        self.check_locks = check_locks
        self.violations = []
        self.events_checked = 0
        #: Violations seen but not recorded (warn mode past the cap).
        self.suppressed = 0
        self._last_time = None
        # Conservation automaton state.
        self._phase = {}       # tx id -> _READY/_ACTIVE/_LIMBO
        self._commit_point = set()  # tx ids past their commit point
        self._submitted = 0
        self._committed = 0
        self._ready = 0
        self._active = 0
        self._limbo = 0
        # Flow-balance state for feedback/re-entry routing.
        self._reentries = 0
        self._class_submitted = {}  # routing class -> submissions
        self._class_committed = {}  # routing class -> completions
        # Resource pairing state: resource key -> (busy count, capacity).
        self._busy = {}
        # Lock table for the exclusivity check: obj -> [writer, readers].
        self._locks = {}
        # Network / commit-protocol state.
        self._msgs_sent = 0
        self._msgs_received = 0
        self._prepares = {}  # tx id -> set of prepared participant nodes
        self._votes = {}     # tx id -> set of participant nodes that voted
        self._model = None

    # -- subscriber protocol -------------------------------------------------

    def on_attach(self, bus, model):
        self._model = model
        if self.check_locks is None and model is not None:
            self.check_locks = (
                getattr(model.cc, "name", None) == "blocking"
            )

    def handlers(self):
        return {
            TX_SUBMIT: self._on_submit,
            TX_RESUBMIT: self._on_resubmit,
            TX_ADMIT: self._on_admit,
            TX_BLOCK: self._on_block,
            TX_RESTART: self._on_restart,
            TX_COMMIT_POINT: self._on_commit_point,
            TX_COMPLETE: self._on_complete,
            RESOURCE_BUSY: self._on_resource_busy,
            RESOURCE_IDLE: self._on_resource_idle,
            CC_GRANT: self._on_cc_grant,
            MSG_SEND: self._on_msg_send,
            MSG_RECV: self._on_msg_recv,
            TWO_PC_PREPARE: self._on_2pc_prepare,
            TWO_PC_VOTE: self._on_2pc_vote,
            TWO_PC_DECIDE: self._on_2pc_decide,
        }

    # -- violation plumbing --------------------------------------------------

    def _violate(self, time, invariant, message, **details):
        violation = InvariantViolation(time, invariant, message, details)
        if self.mode == "strict":
            raise InvariantViolationError(violation)
        if len(self.violations) < MAX_RECORDED_VIOLATIONS:
            self.violations.append(violation)
        else:
            self.suppressed += 1

    def _tick(self, time):
        """Shared per-event bookkeeping: count + clock monotonicity."""
        self.events_checked += 1
        last = self._last_time
        if last is not None and time < last:
            self._violate(
                time, "clock_monotonicity",
                f"event time {time!r} precedes previous event time "
                f"{last!r}",
                previous=last,
            )
        self._last_time = time

    # -- transaction lifecycle ----------------------------------------------

    def _enter_ready(self, time, tx, kind, expected_phase):
        phase = self._phase.get(tx.id)
        if phase != expected_phase:
            self._violate(
                time, "conservation",
                f"{kind} of tx {tx.id} in phase {phase!r} "
                f"(expected {expected_phase!r})",
                tx=tx.id, phase=phase, event=kind,
            )
            return
        self._phase[tx.id] = _READY
        self._ready += 1

    @staticmethod
    def _routing_class(tx):
        return getattr(tx, "tx_class", None) or "default"

    def _on_submit(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        self._submitted += 1
        cls = self._routing_class(tx)
        self._class_submitted[cls] = self._class_submitted.get(cls, 0) + 1
        if getattr(tx, "reentry_of", None) is not None:
            self._reentries += 1
            # Flow balance: a re-entry is routed from a completion, so
            # re-entries can never outnumber completed transactions.
            if self._reentries > self._committed:
                self._violate(
                    time, "flow_balance",
                    f"{self._reentries} re-entries exceed "
                    f"{self._committed} completions (tx {tx.id} "
                    f"re-enters from tx {tx.reentry_of})",
                    tx=tx.id, reentry_of=tx.reentry_of,
                    reentries=self._reentries,
                    committed=self._committed,
                )
        self._enter_ready(time, tx, TX_SUBMIT, None)
        self._check_conservation(time)

    def _on_resubmit(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        if self._phase.get(tx.id) == _LIMBO:
            self._limbo -= 1
        self._enter_ready(time, tx, TX_RESUBMIT, _LIMBO)
        self._check_conservation(time)

    def _on_admit(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        phase = self._phase.get(tx.id)
        if phase != _READY:
            self._violate(
                time, "conservation",
                f"admit of tx {tx.id} in phase {phase!r} "
                f"(expected 'ready')",
                tx=tx.id, phase=phase, event=TX_ADMIT,
            )
            return
        self._phase[tx.id] = _ACTIVE
        self._ready -= 1
        self._active += 1
        self._commit_point.discard(tx.id)
        model = self._model
        if model is not None:
            limit = getattr(model, "mpl_limit", None)
            if limit is not None and self._active > limit:
                self._violate(
                    time, "admission_control",
                    f"{self._active} active transactions exceed the "
                    f"multiprogramming limit {limit}",
                    active=self._active, mpl_limit=limit,
                )
        self._check_conservation(time)

    def _on_block(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        phase = self._phase.get(tx.id)
        if phase != _ACTIVE:
            self._violate(
                time, "conservation",
                f"block of tx {tx.id} in phase {phase!r} "
                f"(expected 'active')",
                tx=tx.id, phase=phase, event=TX_BLOCK,
            )

    def _on_commit_point(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        phase = self._phase.get(tx.id)
        if phase != _ACTIVE:
            self._violate(
                time, "commit_point_ordering",
                f"commit point of tx {tx.id} in phase {phase!r} "
                f"(expected 'active')",
                tx=tx.id, phase=phase,
            )
            return
        if tx.id in self._commit_point:
            self._violate(
                time, "commit_point_ordering",
                f"tx {tx.id} reached a second commit point in one "
                f"attempt",
                tx=tx.id,
            )
            return
        self._commit_point.add(tx.id)

    def _on_restart(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        phase = self._phase.get(tx.id)
        if phase != _ACTIVE:
            self._violate(
                time, "conservation",
                f"restart of tx {tx.id} in phase {phase!r} "
                f"(expected 'active')",
                tx=tx.id, phase=phase, event=TX_RESTART,
            )
            return
        if tx.id in self._commit_point:
            self._violate(
                time, "commit_point_ordering",
                f"tx {tx.id} restarted after its commit point "
                f"(installed writes can no longer abort)",
                tx=tx.id,
            )
        self._phase[tx.id] = _LIMBO
        self._active -= 1
        self._limbo += 1
        self._commit_point.discard(tx.id)
        # An aborting attempt discards its prepare window (the commit
        # protocol's abort hook); the next attempt prepares afresh.
        self._prepares.pop(tx.id, None)
        self._votes.pop(tx.id, None)
        self._release_locks(tx.id)
        self._check_conservation(time)

    def _on_complete(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        phase = self._phase.get(tx.id)
        if phase != _ACTIVE:
            self._violate(
                time, "conservation",
                f"commit of tx {tx.id} in phase {phase!r} "
                f"(expected 'active')",
                tx=tx.id, phase=phase, event=TX_COMPLETE,
            )
            return
        if tx.id not in self._commit_point:
            self._violate(
                time, "commit_point_ordering",
                f"tx {tx.id} committed without a commit point",
                tx=tx.id,
            )
        if tx.id in self._prepares:
            self._violate(
                time, "2pc_quorum",
                f"tx {tx.id} completed with an undecided prepare window "
                f"({sorted(self._prepares[tx.id])} prepared, no commit "
                f"decision recorded)",
                tx=tx.id, prepared=sorted(self._prepares[tx.id]),
            )
            del self._prepares[tx.id]
        self._votes.pop(tx.id, None)
        # Committed transactions leave the automaton entirely, which
        # bounds the checker's memory over arbitrarily long runs.
        del self._phase[tx.id]
        self._commit_point.discard(tx.id)
        self._active -= 1
        self._committed += 1
        cls = self._routing_class(tx)
        committed = self._class_committed.get(cls, 0) + 1
        self._class_committed[cls] = committed
        # Per-class flow balance: completions of a routing class never
        # exceed its submissions (the classwise refinement of the
        # global conservation identity, valid under re-entry because a
        # re-entry is a fresh submission of the same class).
        if committed > self._class_submitted.get(cls, 0):
            self._violate(
                time, "flow_balance",
                f"class {cls!r} completed {committed} transactions but "
                f"submitted only {self._class_submitted.get(cls, 0)}",
                tx=tx.id, routing_class=cls, committed=committed,
                submitted=self._class_submitted.get(cls, 0),
            )
        self._release_locks(tx.id)
        self._check_conservation(time)

    def _check_conservation(self, time):
        """started == committed + ready + active + restarted-in-flight."""
        balance = self._committed + self._ready + self._active + self._limbo
        if (self._submitted != balance
                or self._ready < 0 or self._active < 0 or self._limbo < 0):
            self._violate(
                time, "conservation",
                f"{self._submitted} submitted != {self._committed} "
                f"committed + {self._ready} ready + {self._active} "
                f"active + {self._limbo} in restart limbo",
                submitted=self._submitted, committed=self._committed,
                ready=self._ready, active=self._active, limbo=self._limbo,
            )

    # -- physical resources --------------------------------------------------

    def _resource_capacity(self, fields):
        """Capacity of the pool an event's server belongs to."""
        model = self._model
        if model is None:
            return float("inf")
        physical = getattr(model, "physical", None)
        if physical is None:
            return float("inf")
        if fields.get("resource") == "cpu":
            node = fields.get("node")
            if node is not None:
                capacity_at = getattr(physical, "cpu_capacity_at", None)
                if capacity_at is not None:
                    return capacity_at(node)
            return getattr(physical.cpu, "capacity", float("inf"))
        disk = fields.get("disk")
        if disk is None:
            return float("inf")
        try:
            return getattr(
                physical.disks[disk], "capacity", float("inf")
            )
        except (IndexError, TypeError):
            return float("inf")

    @staticmethod
    def _resource_key(fields):
        resource = fields.get("resource")
        disk = fields.get("disk")
        node = fields.get("node")
        if node is not None:
            # Multi-site models serve CPU from per-node pools; the
            # pairing ledger must not conflate distinct nodes' servers.
            return (resource, "node", node)
        return resource if disk is None else (resource, disk)

    def _on_resource_busy(self, time, fields):
        self._tick(time)
        key = self._resource_key(fields)
        busy = self._busy.get(key, 0) + 1
        self._busy[key] = busy
        capacity = self._resource_capacity(fields)
        if busy > capacity:
            self._violate(
                time, "resource_pairing",
                f"{busy} concurrent service periods on {key!r} exceed "
                f"its capacity {capacity}",
                resource=str(key), busy=busy, capacity=capacity,
            )

    def _on_resource_idle(self, time, fields):
        self._tick(time)
        key = self._resource_key(fields)
        busy = self._busy.get(key, 0) - 1
        self._busy[key] = busy
        if busy < 0:
            self._violate(
                time, "resource_pairing",
                f"resource {key!r} went idle more times than busy",
                resource=str(key), busy=busy,
            )
            self._busy[key] = 0

    # -- lock-grant exclusivity ----------------------------------------------

    def _on_cc_grant(self, time, fields):
        self._tick(time)
        if not self.check_locks:
            return
        tx = fields["tx"]
        obj = fields["obj"]
        entry = self._locks.get(obj)
        if entry is None:
            entry = self._locks[obj] = [None, set()]
        writer, readers = entry
        if fields["op"] == "write":
            foreign_readers = readers - {tx.id}
            if writer is not None and writer != tx.id:
                self._violate(
                    time, "lock_exclusivity",
                    f"write on {obj!r} granted to tx {tx.id} while tx "
                    f"{writer} holds a write grant",
                    obj=obj, tx=tx.id, holder=writer,
                )
            elif foreign_readers:
                self._violate(
                    time, "lock_exclusivity",
                    f"write on {obj!r} granted to tx {tx.id} while "
                    f"{sorted(foreign_readers)} hold read grants",
                    obj=obj, tx=tx.id,
                    holders=sorted(foreign_readers),
                )
            entry[0] = tx.id
        else:
            if writer is not None and writer != tx.id:
                self._violate(
                    time, "lock_exclusivity",
                    f"read on {obj!r} granted to tx {tx.id} while tx "
                    f"{writer} holds a write grant",
                    obj=obj, tx=tx.id, holder=writer,
                )
            readers.add(tx.id)

    def _release_locks(self, tx_id):
        """Strict 2PL: commit/abort releases everything a tx held."""
        if not self._locks:
            return
        empty = []
        for obj, entry in self._locks.items():
            if entry[0] == tx_id:
                entry[0] = None
            entry[1].discard(tx_id)
            if entry[0] is None and not entry[1]:
                empty.append(obj)
        for obj in empty:
            del self._locks[obj]

    # -- network messages and two-phase commit -------------------------------

    def _on_msg_send(self, time, fields):
        self._tick(time)
        self._msgs_sent += 1

    def _on_msg_recv(self, time, fields):
        self._tick(time)
        self._msgs_received += 1
        if self._msgs_received > self._msgs_sent:
            self._violate(
                time, "message_pairing",
                f"{self._msgs_received} deliveries exceed "
                f"{self._msgs_sent} sends",
                received=self._msgs_received, sent=self._msgs_sent,
            )

    def _on_2pc_prepare(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        node = fields["node"]
        prepared = self._prepares.setdefault(tx.id, set())
        if node in prepared:
            self._violate(
                time, "2pc_quorum",
                f"tx {tx.id} sent a second prepare to node {node} in "
                f"one commit attempt",
                tx=tx.id, node=node,
            )
        prepared.add(node)

    def _on_2pc_vote(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        node = fields["node"]
        if node not in self._prepares.get(tx.id, ()):
            self._violate(
                time, "2pc_quorum",
                f"node {node} voted on tx {tx.id} without an "
                f"outstanding prepare",
                tx=tx.id, node=node,
            )
            return
        self._votes.setdefault(tx.id, set()).add(node)

    def _on_2pc_decide(self, time, fields):
        self._tick(time)
        tx = fields["tx"]
        prepared = self._prepares.pop(tx.id, set())
        votes = self._votes.pop(tx.id, set())
        unvoted = prepared - votes
        if unvoted:
            self._violate(
                time, "2pc_quorum",
                f"commit decision for tx {tx.id} without votes from "
                f"prepared nodes {sorted(unvoted)}",
                tx=tx.id, unvoted=sorted(unvoted),
            )
        quorum = fields.get("quorum")
        if quorum is not None and quorum != len(prepared):
            self._violate(
                time, "2pc_quorum",
                f"decision quorum {quorum} for tx {tx.id} does not "
                f"match its {len(prepared)} prepared participants",
                tx=tx.id, quorum=quorum, prepared=sorted(prepared),
            )

    # -- reporting -----------------------------------------------------------

    @property
    def violation_count(self):
        return len(self.violations) + self.suppressed

    def report(self):
        """JSON-serializable summary for ``result.diagnostics``."""
        payload = {
            "mode": self.mode,
            "events_checked": self.events_checked,
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": self.suppressed,
        }
        if self._msgs_sent:
            payload["messages"] = {
                "sent": self._msgs_sent,
                "received": self._msgs_received,
            }
        if self._reentries:
            payload["reentries"] = self._reentries
            payload["flow"] = {
                cls: {
                    "submitted": self._class_submitted.get(cls, 0),
                    "completed": self._class_committed.get(cls, 0),
                }
                for cls in sorted(self._class_submitted)
            }
        return payload

    def __repr__(self):
        return (
            f"<InvariantChecker mode={self.mode} "
            f"events={self.events_checked} "
            f"violations={self.violation_count}>"
        )
