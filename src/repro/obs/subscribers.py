"""Built-in bus subscribers: metrics, traces, history, fault accounting.

Each class adapts one pre-existing measurement consumer to the
:class:`~repro.obs.bus.InstrumentationBus` subscriber protocol, so the
engine has a single emission path instead of hand-wired collector
fields. All of them are pure observers: they never mutate model state,
which is what keeps fixed-seed results bit-identical whatever set of
subscribers is attached.
"""

from repro.core.history import CommittedRecord
from repro.core.transaction import Transaction
from repro.obs.events import (
    ALL_KINDS,
    BUFFER_HIT,
    BUFFER_KINDS,
    BUFFER_MISS,
    BUFFER_WRITEBACK,
    CC_GRANT,
    FAULT_ACCESS,
    FAULT_CPU_DEGRADE,
    FAULT_CPU_RESTORE,
    FAULT_DISK_FAIL,
    FAULT_DISK_REPAIR,
    FAULT_KINDS,
    TX_ADMIT,
    TX_BLOCK,
    TX_COMMIT_POINT,
    TX_COMPLETE,
    TX_RESTART,
    TX_RESUBMIT,
    TX_SUBMIT,
)


def scalar_fields(fields):
    """Flatten event fields to JSON/log-friendly scalars.

    Live :class:`~repro.core.transaction.Transaction` objects collapse
    to their ids; everything else passes through unchanged.
    """
    return {
        key: value.id if isinstance(value, Transaction) else value
        for key, value in fields.items()
    }


class Subscriber:
    """Convenience base: route every subscribed kind to ``on_event``.

    Subclasses either set ``kinds`` (an iterable of event kinds; None
    means every kind in :data:`~repro.obs.events.ALL_KINDS`) and
    implement ``on_event(time, kind, fields)``, or override
    :meth:`handlers` entirely for per-kind dispatch without the extra
    indirection.
    """

    kinds = None

    def handlers(self):
        kinds = ALL_KINDS if self.kinds is None else self.kinds
        on_event = self.on_event
        table = {}
        for kind in kinds:
            # Bind the kind now so the per-event call carries it.
            table[kind] = (
                lambda time, fields, _kind=kind:
                on_event(time, _kind, fields)
            )
        return table

    def on_event(self, time, kind, fields):
        raise NotImplementedError


class MetricsSubscriber:
    """Feeds a :class:`~repro.core.metrics.MetricsCollector`.

    Translates lifecycle events into the collector's recording hooks
    and maintains its ready/active :class:`~repro.des.LevelMonitor`
    mirrors of the engine's admission state. This is the default (and
    usually only) subscriber; the dispatch path through it is the
    engine's measurement fast path.
    """

    def __init__(self, metrics):
        self.metrics = metrics

    def handlers(self):
        metrics = self.metrics
        ready = metrics.ready_queue_level
        active = metrics.active_level

        def submit(time, fields):
            metrics.record_submit(fields["tx"])
            ready.add(1)

        def enqueue(time, fields):
            ready.add(1)

        def admit(time, fields):
            ready.add(-1)
            active.add(1)

        def block(time, fields):
            metrics.record_block(fields["tx"])

        def restart(time, fields):
            metrics.record_restart(fields["tx"], fields["reason"])
            active.add(-1)

        def commit(time, fields):
            metrics.record_commit(fields["tx"])
            active.add(-1)

        return {
            TX_SUBMIT: submit,
            TX_RESUBMIT: enqueue,
            TX_ADMIT: admit,
            TX_BLOCK: block,
            TX_RESTART: restart,
            TX_COMPLETE: commit,
        }


class TraceSubscriber:
    """Feeds a :class:`~repro.des.TraceRecorder`.

    Formats each event into the recorder's legacy flat-scalar field
    layout (``tx`` is the transaction id, not the object), so traces
    captured through the bus are record-for-record identical to the
    ones the engine used to write by hand. Kinds without a dedicated
    formatter pass through :func:`scalar_fields`.

    Honors the recorder's source-side ``kinds`` filter by subscribing
    only to those kinds, so filtered-out high-volume events are never
    even emitted.
    """

    def __init__(self, recorder):
        self.recorder = recorder

    def handlers(self):
        record = self.recorder.record

        def submit(time, fields):
            tx = fields["tx"]
            record(
                time, TX_SUBMIT, tx=tx.id, terminal=tx.terminal_id,
                reads=len(tx.read_set), writes=len(tx.write_set),
            )

        def resubmit(time, fields):
            tx = fields["tx"]
            record(time, TX_RESUBMIT, tx=tx.id, attempt=tx.attempts)

        def admit(time, fields):
            tx = fields["tx"]
            record(time, TX_ADMIT, tx=tx.id, attempt=tx.attempts)

        def block(time, fields):
            tx = fields["tx"]
            record(time, TX_BLOCK, tx=tx.id, attempt=tx.attempts)

        def restart(time, fields):
            tx = fields["tx"]
            record(
                time, TX_RESTART, tx=tx.id, attempt=tx.attempts,
                reason=fields["reason"],
            )

        def commit(time, fields):
            tx = fields["tx"]
            record(
                time, TX_COMPLETE, tx=tx.id, attempt=tx.attempts,
                response=tx.response_time(),
            )

        def commit_point(time, fields):
            tx = fields["tx"]
            record(
                time, TX_COMMIT_POINT, tx=tx.id, attempt=tx.attempts,
                writes=len(tx.install_write_set),
            )

        def cc_grant(time, fields):
            tx = fields["tx"]
            record(
                time, CC_GRANT, tx=tx.id, obj=fields["obj"],
                op=fields["op"],
            )

        formatters = {
            TX_SUBMIT: submit,
            TX_RESUBMIT: resubmit,
            TX_ADMIT: admit,
            TX_BLOCK: block,
            TX_RESTART: restart,
            TX_COMPLETE: commit,
            TX_COMMIT_POINT: commit_point,
            CC_GRANT: cc_grant,
        }

        def passthrough(kind):
            def handler(time, fields):
                flat = scalar_fields(fields)
                # Some events (e.g. ``sample``) carry their own "time"
                # field; the dispatch timestamp is authoritative.
                flat.pop("time", None)
                record(time, kind, **flat)
            return handler

        kinds = (
            ALL_KINDS if self.recorder.kinds is None
            else self.recorder.kinds
        )
        return {
            kind: formatters.get(kind) or passthrough(kind)
            for kind in kinds
        }


class HistorySubscriber:
    """Collects a :class:`~repro.core.history.CommittedRecord` per
    commit point — the engine's ``record_history`` path as a
    subscriber. Recording at the commit point (not completion) keeps
    the history and the object store consistent under any run cutoff.
    """

    def __init__(self):
        self.records = []

    def handlers(self):
        records = self.records

        def commit_point(time, fields):
            records.append(
                CommittedRecord(fields["tx"], commit_point_time=time)
            )

        return {TX_COMMIT_POINT: commit_point}


class BufferAccountingSubscriber:
    """Accumulates the cache statistics of one run.

    The ``buffered`` resource model emits ``buffer_hit``/``buffer_miss``
    per object read and ``buffer_writeback`` per deferred update; this
    subscriber (attached by the model itself, mirroring the fault
    injector's accounting) turns them into the counters behind
    ``buffer_summary()``, the run diagnostics, and the sweep report's
    hit-ratio table.
    """

    kinds = BUFFER_KINDS

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def probes(self):
        return self.hits + self.misses

    @property
    def hit_ratio(self):
        """Realized hit ratio, or None before any probe."""
        probes = self.hits + self.misses
        if probes == 0:
            return None
        return self.hits / probes

    def handlers(self):
        def hit(time, fields):
            self.hits += 1

        def miss(time, fields):
            self.misses += 1

        def writeback(time, fields):
            self.writebacks += 1

        return {
            BUFFER_HIT: hit,
            BUFFER_MISS: miss,
            BUFFER_WRITEBACK: writeback,
        }


class FaultAccountingSubscriber:
    """Accumulates the cumulative fault statistics of one run.

    The :class:`~repro.faults.FaultInjector` emits fault events; this
    subscriber (attached by the injector itself) turns them into the
    counters its ``summary()`` reports, so fault accounting rides the
    same event stream as every other signal.
    """

    kinds = FAULT_KINDS

    def __init__(self):
        self.disk_failures = 0
        self.disk_downtime = 0.0
        #: Disks currently under repair (a gauge, not a counter).
        self.disks_down = 0
        self.cpu_degradations = 0
        self.cpu_degraded_time = 0.0
        self.access_faults = 0

    def handlers(self):
        def disk_fail(time, fields):
            self.disk_failures += 1
            self.disks_down += 1

        def disk_repair(time, fields):
            self.disks_down -= 1
            self.disk_downtime += fields["downtime"]

        def cpu_degrade(time, fields):
            self.cpu_degradations += 1

        def cpu_restore(time, fields):
            self.cpu_degraded_time += fields["duration"]

        def access_fault(time, fields):
            self.access_faults += 1

        return {
            FAULT_DISK_FAIL: disk_fail,
            FAULT_DISK_REPAIR: disk_repair,
            FAULT_CPU_DEGRADE: cpu_degrade,
            FAULT_CPU_RESTORE: cpu_restore,
            FAULT_ACCESS: access_fault,
        }
