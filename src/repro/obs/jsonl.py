"""Streaming JSONL sink: one event per line, written as it happens.

Unlike the bounded in-memory :class:`~repro.des.TraceRecorder`, the
sink spools every subscribed event straight to disk, so arbitrarily
long runs can be traced (the CLI's ``--trace`` writes one file per
sweep point through this class). Lines are self-describing::

    {"time": 12.25, "kind": "restart", "tx": 91, "reason": "deadlock"}

Transaction objects are flattened to ids; any other non-JSON value is
serialized via ``repr``.
"""

import json

from repro.obs.subscribers import Subscriber, scalar_fields


class JsonlSink(Subscriber):
    """Writes subscribed events to a JSONL file or file-like object.

    ``kinds`` restricts the subscription (None = every known kind);
    restricting at the subscription — rather than filtering received
    events — means unobserved high-volume kinds are never emitted at
    all. The sink owns (and closes) the file only when given a path.
    """

    def __init__(self, destination, kinds=None):
        self.kinds = frozenset(kinds) if kinds is not None else None
        if hasattr(destination, "write"):
            self._file = destination
            self._owns_file = False
            self.path = getattr(destination, "name", None)
        else:
            self._file = open(destination, "w")
            self._owns_file = True
            self.path = destination
        self.events_written = 0
        self._closed = False

    def on_event(self, time, kind, fields):
        if self._closed or getattr(self._file, "closed", False):
            # A simulation abandoned mid-run can still emit during
            # garbage collection (suspended generators run their
            # ``finally`` clauses, and the file object may have been
            # finalized first); those late events are dropped.
            return
        record = {"time": time, "kind": kind}
        record.update(scalar_fields(fields))
        self._file.write(json.dumps(record, default=repr))
        self._file.write("\n")
        self.events_written += 1

    def close(self):
        """Flush, close if the sink opened the file, and stop writing."""
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def read_jsonl(path):
    """Load a sink's output back as a list of dicts (tests, notebooks)."""
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]
