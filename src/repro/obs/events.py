"""The instrumentation event taxonomy.

Every operational signal the engine, physical model, or fault injector
can report flows through the :class:`~repro.obs.bus.InstrumentationBus`
as one of these event kinds. The kind strings are **stable**: they
appear verbatim in trace logs, JSONL event streams, and checkpointed
diagnostics, so renaming one is a format change.

Transaction lifecycle (the closed model of paper Figures 1-2):

* ``submit`` — first entry into the ready queue (attempt 0);
* ``resubmit`` — re-entry into the ready queue after a restart;
* ``admit`` — admitted under the multiprogramming limit, attempt begins;
* ``block`` — a concurrency-control request made the transaction wait;
* ``restart`` — the attempt was aborted and will re-run;
* ``commit_point`` — writes installed; the transaction can no longer
  abort (deferred-update I/O may still follow);
* ``commit`` — the attempt completed (kept as ``commit`` — not
  ``complete`` — for trace-log compatibility).

Concurrency-control decisions: ``block``/``restart`` above record the
negative decisions; ``cc_grant`` records a granted read/write request
(high volume — only emitted when someone subscribes to it).

Resources: ``resource_busy``/``resource_idle`` mark a CPU or disk
server starting and finishing one service period (high volume; only
emitted when subscribed).

Buffer pool (the ``buffered`` resource model):
``buffer_hit``/``buffer_miss`` record the cache probe outcome of one
object read, ``buffer_writeback`` one deferred update written through
at commit time. These drive the hit-ratio accounting that surfaces in
``SimulationResult.diagnostics`` and the sweep report.

Distributed tier (the ``distributed`` resource model and the ``2pc``
commit protocol): ``msg_send``/``msg_recv`` bracket one cross-node
message; ``2pc_prepare``/``2pc_vote``/``2pc_decide`` record the
two-phase commit handshake — the invariant checker enforces
prepare/vote matching and vote quorum on exactly these kinds.

Faults (:mod:`repro.faults`): ``disk_fail``/``disk_repair``,
``cpu_degrade``/``cpu_restore``, ``access_fault``.

``sample`` carries one row of a
:class:`~repro.obs.timeseries.TimeSeriesSampler`.

Event *fields* are live model objects where that is cheapest — in
particular lifecycle events carry the :class:`~repro.core.transaction.
Transaction` itself under ``tx`` — and subscribers that persist events
(trace, JSONL) flatten them to scalars via :func:`~repro.obs.
subscribers.scalar_fields`.
"""

# -- transaction lifecycle ----------------------------------------------------
TX_SUBMIT = "submit"
TX_RESUBMIT = "resubmit"
TX_ADMIT = "admit"
TX_BLOCK = "block"
TX_RESTART = "restart"
TX_COMMIT_POINT = "commit_point"
TX_COMPLETE = "commit"

# -- concurrency-control decisions --------------------------------------------
CC_GRANT = "cc_grant"

# -- physical resources -------------------------------------------------------
RESOURCE_BUSY = "resource_busy"
RESOURCE_IDLE = "resource_idle"

# -- buffer pool (buffered resource model) ------------------------------------
BUFFER_HIT = "buffer_hit"
BUFFER_MISS = "buffer_miss"
BUFFER_WRITEBACK = "buffer_writeback"

# -- cross-node messaging (distributed resource model) ------------------------
MSG_SEND = "msg_send"
MSG_RECV = "msg_recv"

# -- commit protocols (two-phase commit) ---------------------------------------
TWO_PC_PREPARE = "2pc_prepare"
TWO_PC_VOTE = "2pc_vote"
TWO_PC_DECIDE = "2pc_decide"

# -- fault injection ----------------------------------------------------------
FAULT_DISK_FAIL = "disk_fail"
FAULT_DISK_REPAIR = "disk_repair"
FAULT_CPU_DEGRADE = "cpu_degrade"
FAULT_CPU_RESTORE = "cpu_restore"
FAULT_ACCESS = "access_fault"

# -- derived signals ----------------------------------------------------------
SAMPLE = "sample"

#: The lifecycle kinds, in causal order.
LIFECYCLE_KINDS = (
    TX_SUBMIT,
    TX_RESUBMIT,
    TX_ADMIT,
    TX_BLOCK,
    TX_RESTART,
    TX_COMMIT_POINT,
    TX_COMPLETE,
)

#: Kinds emitted by the fault injector.
FAULT_KINDS = (
    FAULT_DISK_FAIL,
    FAULT_DISK_REPAIR,
    FAULT_CPU_DEGRADE,
    FAULT_CPU_RESTORE,
    FAULT_ACCESS,
)

#: Kinds emitted by the physical model.
RESOURCE_KINDS = (RESOURCE_BUSY, RESOURCE_IDLE)

#: Kinds emitted by the buffered resource model's cache.
BUFFER_KINDS = (BUFFER_HIT, BUFFER_MISS, BUFFER_WRITEBACK)

#: Kinds emitted by the distributed model's network legs: one
#: ``msg_send``/``msg_recv`` pair brackets every cross-node message
#: (prepare, vote and decision messages of the commit protocol
#: included).
MESSAGE_KINDS = (MSG_SEND, MSG_RECV)

#: Kinds emitted by the two-phase commit protocol: one ``2pc_prepare``
#: per (transaction, participant), the matching ``2pc_vote`` when the
#: participant's acknowledgement arrives, and one ``2pc_decide`` when
#: the coordinator commits with a full quorum of votes.
COMMIT_PROTOCOL_KINDS = (TWO_PC_PREPARE, TWO_PC_VOTE, TWO_PC_DECIDE)

#: Every kind the built-in emitters produce. Subscribers with
#: ``kinds = None`` are registered for exactly this set.
ALL_KINDS = frozenset(
    LIFECYCLE_KINDS
    + FAULT_KINDS
    + RESOURCE_KINDS
    + BUFFER_KINDS
    + MESSAGE_KINDS
    + COMMIT_PROTOCOL_KINDS
    + (CC_GRANT, SAMPLE)
)
