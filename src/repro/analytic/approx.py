"""Approximate MVA (Schweitzer's fixed point).

Exact MVA recurses over every population 1..N; for quick what-if
questions at large N, Schweitzer's approximation replaces the
recursion with a fixed point on the queue lengths:

    Q_i(N-1) ~= Q_i(N) * (N - 1) / N

iterated until the queue lengths stop moving. Delay and single-server
centers use the standard formulation; multi-server centers use
Seidmann's split (a fast single server of demand D/m plus a pure delay
of D(m-1)/m), which is exact for m=1 and a good approximation at the
utilizations the model runs at.

Accuracy against the exact solver is pinned by the test suite: a few
percent on the paper's (single-CPU) networks, but *pessimistic by up to
~25% for wide multi-server pools at mid load* — the Seidmann split
serializes the queueing part. Prefer :func:`solve_closed_network`
whenever N is small enough to afford it.
"""

from repro.analytic.mva import (
    DELAY,
    MULTI_SERVER,
    QUEUEING,
    MvaResult,
)


def solve_closed_network_approx(centers, population, tolerance=1e-10,
                                max_iterations=100_000):
    """Schweitzer fixed-point solution at one population level."""
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    centers = list(centers)
    names = [center.name for center in centers]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate center names in {names}")

    n = float(population)
    # Start from an even spread over the non-delay centers.
    active = [c for c in centers if c.kind != DELAY] or centers
    queue = {
        center.name: (n / len(active) if center in active else 0.0)
        for center in centers
    }
    throughput = 0.0
    for _ in range(max_iterations):
        residence = {}
        for center in centers:
            if center.kind == DELAY:
                residence[center.name] = center.demand
                continue
            seen = queue[center.name] * (n - 1.0) / n
            if center.kind == QUEUEING:
                residence[center.name] = center.demand * (1.0 + seen)
            else:  # MULTI_SERVER: Seidmann's split — a fast single
                # server of demand D/m plus a pure delay of D(m-1)/m.
                servers = center.servers
                residence[center.name] = (
                    center.demand * (servers - 1.0) / servers
                    + center.demand / servers * (1.0 + seen)
                )
        total = sum(residence.values())
        throughput = n / total if total > 0 else 0.0
        new_queue = {
            center.name: throughput * residence[center.name]
            for center in centers
        }
        drift = max(
            abs(new_queue[name] - queue[name]) for name in queue
        )
        queue = new_queue
        if drift < tolerance:
            break
    delay_demand = sum(
        center.demand for center in centers if center.kind == DELAY
    )
    utilizations = {}
    for center in centers:
        if center.kind == DELAY:
            utilizations[center.name] = 0.0
        else:
            servers = center.servers if center.kind == MULTI_SERVER else 1
            utilizations[center.name] = min(
                1.0, throughput * center.demand / servers
            )
    return MvaResult(
        population=population,
        throughput=throughput,
        response_time=sum(residence.values()) - delay_demand,
        residence_times=residence,
        queue_lengths=queue,
        utilizations=utilizations,
    )
