"""Data-contention corrections over the contention-free MVA solution.

The MVA bridge (:mod:`repro.analytic.bridge`) predicts the *substrate*:
hardware queueing with zero data contention, exact only for the
``noop`` baseline. This module layers the missing physics on top as
fixed-point corrections, in the spirit of Di Sanzo's data-access-
pattern analytical model and Thomasian's heterogeneous data access
model (PAPERS.md): a transaction of ``k`` accesses against a database
of ``db_size`` objects, concurrent with ``m_eff - 1`` others, sees a
per-access conflict probability

    p = alpha * (m_eff - 1) * (k / 2) / db_size * w * (2 - w)

(the ``k/2`` is the mean number of locks a uniformly-progressing
transaction holds; ``w = k_w / k`` is the write fraction, and
``w(2-w)`` the probability an access/held-lock encounter involves at
least one write — shared read locks never conflict, so read-only
workloads see zero lock contention, matching the simulator). What a
conflict *costs* depends on the algorithm:

* **blocking** (dynamic 2PL) — each conflict blocks the requester for
  a fraction of the holder's remaining residence, and the holder may
  itself be blocked (wait chains): with blocked fraction
  ``f = k * p / 2``, the per-transaction lock wait is
  ``W = R_proc * f / (1 - beta * f)`` — ``alpha`` scales the conflict
  rate, ``beta`` the wait-chain depth — a virtual delay center
  *inside* the DBMS whose cascade denominator diverges as contention
  rises; this is what makes blocking *thrash* (DC-thrashing) rather
  than merely saturate;
* **immediate_restart** — each conflict aborts the requester after
  roughly half its work: mean attempts per commit
  ``A = 1 / (1 - p_abort)`` with ``p_abort = 1 - (1-p)^k``, a resource
  demand inflation ``F = 1 + (A-1) * beta/2``, plus the algorithm's
  adaptive restart delay (~ one response time per failed attempt)
  spent *outside* the DBMS;
* **optimistic** — conflicts are detected at commit, so every failed
  attempt wastes a whole pass: ``p_abort = 1 - exp(-alpha * m_eff *
  k_w * k / db_size)`` (write sets of concurrent committers hitting
  the read set) and ``F = 1 + (A-1) * beta``.

``alpha`` and ``beta`` are the per-algorithm
:class:`CorrectionCoefficients`; :mod:`repro.analytic.calibrate` fits
them against simulation on a seeded grid and ships the result here as
:data:`DEFAULT_COEFFS`.

The solver pins the concurrency level ``m_eff`` and runs a plain
Schweitzer approximate-MVA fixed point at it (contractive — all
contention quantities are closed-form in ``m_eff``), then solves the
concurrency self-consistency ``m_eff = min(mpl, X * R_in)`` as a 1-D
Illinois root find over that evaluator. Two regimes per prediction:

* a **closed** solve over terminals + DBMS at the full terminal
  population, whose root also reports whether the in-DBMS population
  actually reaches the mpl cap, and
* a **capped** solve over the DBMS centers alone at ``min(mpl,
  num_terms)`` customers (admission queue saturated), used only when
  the closed solve says the cap binds — when it does not (e.g. the
  adaptive restart delay drains the admission queue), saturation never
  establishes and the closed solution is the operative regime.
Identical disks collapse into one counted group, so the cost per
prediction is independent of ``num_disks`` and a single prediction
runs in well under a millisecond — cheap enough to sweep millions of
configurations (:mod:`repro.analytic.explore`).

Every prediction carries an *uncertainty score*: its contention index
``m_eff * k^2 / db_size * w(2-w)`` relative to the largest index the
calibration grid covered, forced high when the fixed point failed to
converge or hit a probability/attempt clamp. Exploration treats
predictions past the threshold as surrogate-uncertain and spot-checks
them with real simulation.
"""

import math
from dataclasses import dataclass
from typing import Dict

#: Algorithms the surrogate has correction terms for. ``noop`` is the
#: contention-free baseline (both coefficients zero by construction).
SUPPORTED_ALGORITHMS = (
    "noop", "blocking", "immediate_restart", "optimistic"
)

#: Per-access conflict probability clamp (beyond this the linearized
#: conflict model is meaningless; the prediction is flagged).
P_CLAMP = 0.5

#: Per-attempt abort probability clamp.
P_ABORT_CLAMP = 0.98

#: Mean-attempts clamp (A = 1/(1-p_abort) explodes near the clamp).
A_CLAMP = 50.0

#: Fixed-point iteration bound and relative convergence tolerance.
MAX_ITERATIONS = 400
TOLERANCE = 1e-8

_DELAY, _QUEUEING, _MULTI = 0, 1, 2


@dataclass(frozen=True)
class CorrectionCoefficients:
    """Fitted contention-correction coefficients for one algorithm.

    ``alpha`` scales the conflict/abort probability, ``beta`` scales
    what a conflict costs (blocked time for blocking, wasted work for
    the restart algorithms). ``(0, 0)`` disables the corrections and
    reproduces the contention-free solution exactly.
    """

    alpha: float
    beta: float

    def __post_init__(self):
        if self.alpha < 0.0 or self.beta < 0.0:
            raise ValueError(
                f"coefficients must be >= 0, got "
                f"alpha={self.alpha}, beta={self.beta}"
            )


#: Coefficients fitted by ``repro.analytic.calibrate`` on the seeded
#: Table 2 calibration grid (see EXPERIMENTS.md for the divergence
#: numbers); refit with ``repro-experiments calibrate`` after model
#: changes.
DEFAULT_COEFFS: Dict[str, CorrectionCoefficients] = {
    "noop": CorrectionCoefficients(0.0, 0.0),
    "blocking": CorrectionCoefficients(0.24509803921568626, 5.88),
    "immediate_restart": CorrectionCoefficients(
        0.257383009329331, 2.748712907831315
    ),
    "optimistic": CorrectionCoefficients(
        0.08416491103387917, 2.9943410040230383
    ),
}

#: Largest contention index the default calibration grid covered;
#: predictions beyond it are extrapolations (see
#: :meth:`SurrogatePrediction.uncertainty`).
DEFAULT_MAX_INDEX = 6.6000000000000005


@dataclass
class SurrogatePrediction:
    """One surrogate evaluation of (configuration, algorithm, mpl)."""

    algorithm: str
    mpl: int
    population: int
    #: Committed transactions per second.
    throughput: float
    #: Mean seconds from submission to commit (admission wait, resource
    #: residence, lock waits and restart passes included; external
    #: think excluded).
    response_time: float
    #: Mean execution attempts per commit (1.0 = no restarts).
    attempts: float
    #: Mean per-commit lock-wait seconds (blocking only; 0 otherwise).
    blocked_time: float
    #: Effective concurrent transactions the contention terms saw.
    m_eff: float
    #: m_eff * k^2 / db_size * w(2-w) — the dimensionless contention
    #: scale used for extrapolation detection (zero for read-only
    #: workloads, which the contention-free MVA already nails).
    contention_index: float
    #: Fixed point converged within MAX_ITERATIONS.
    converged: bool
    #: A probability or attempt clamp engaged (model out of its depth).
    clamped: bool
    #: Which solve bound the answer: "admission" (the mpl cap) or
    #: "population" (the closed terminal loop).
    binding: str

    def uncertainty(self, max_index=None):
        """Uncertainty score; >= 1.0 means "spot-check me".

        The score is the prediction's contention index relative to
        ``max_index`` (the largest index the calibration grid covered;
        :data:`DEFAULT_MAX_INDEX` when None). Non-convergence or a
        clamp floors the score at 2.0 — those predictions are suspect
        no matter how mild the contention looks.
        """
        if max_index is None:
            max_index = DEFAULT_MAX_INDEX
        score = (
            self.contention_index / max_index if max_index > 0
            else math.inf
        )
        if not self.converged or self.clamped:
            score = max(score, 2.0)
        return score

    def uncertain(self, max_index=None, threshold=1.0):
        return self.uncertainty(max_index) > threshold


def compact_network(params):
    """The DBMS service centers of ``params``, identical ones grouped.

    Returns ``(z, groups)``: the external think demand and a list of
    ``(kind, demand, servers, count)`` tuples covering the internal
    think delay, the CPU pool, and the disks — the same demands as
    :func:`repro.analytic.bridge.network_for_params` assigns, but with
    the ``num_disks`` identical disks collapsed into one counted group
    so solver cost does not scale with the disk count.
    """
    accesses = params.expected_reads() + params.expected_writes()
    cpu_demand = accesses * params.obj_cpu
    disk_demand = accesses * params.obj_io

    groups = []
    if params.int_think_time > 0.0:
        groups.append((_DELAY, params.int_think_time, 1, 1))
    if params.num_cpus is None:
        groups.append((_DELAY, cpu_demand, 1, 1))
    elif params.num_cpus == 1:
        groups.append((_QUEUEING, cpu_demand, 1, 1))
    else:
        groups.append((_MULTI, cpu_demand, params.num_cpus, 1))
    if params.num_disks is None:
        groups.append((_DELAY, disk_demand, 1, 1))
    else:
        groups.append(
            (_QUEUEING, disk_demand / params.num_disks, 1,
             params.num_disks)
        )
    return params.ext_think_time, groups


def _contention_terms(algorithm, m_eff, k, k_w, db, alpha, beta):
    """Conflict probability and mean attempts at a fixed ``m_eff``.

    Returns ``(p, attempts, clamped)``. With the concurrency level
    pinned, every contention quantity is a plain closed-form function
    of it — this is what makes the inner solve contractive.
    """
    clamped = False
    # Shared read locks never conflict with each other: an
    # access/held-lock encounter only conflicts when at least one
    # side is a write, probability w(2-w) with w the write fraction.
    # Read-only workloads therefore see zero lock contention, exactly
    # like the simulator.
    write_fraction = k_w / k if k > 0.0 else 0.0
    p = (
        alpha * max(m_eff - 1.0, 0.0) * (k / 2.0) / db
        * write_fraction * (2.0 - write_fraction)
    )
    if p > P_CLAMP:
        p = P_CLAMP
        clamped = True
    if algorithm == "immediate_restart":
        p_abort = 1.0 - (1.0 - p) ** k
    elif algorithm == "optimistic":
        p_abort = 1.0 - math.exp(-alpha * m_eff * k_w * k / db)
    else:
        return p, 1.0, clamped
    if p_abort > P_ABORT_CLAMP:
        p_abort = P_ABORT_CLAMP
        clamped = True
    attempts = 1.0 / (1.0 - p_abort)
    if attempts > A_CLAMP:
        attempts = A_CLAMP
        clamped = True
    return p, attempts, clamped


def _solve_fixed_m(groups, n, z, m_eff, algorithm, k, k_w, db,
                   alpha, beta, capped, queues):
    """Schweitzer solve with the concurrency level pinned at ``m_eff``.

    All contention quantities are computed from the *fixed* ``m_eff``
    (no population feedback), so the iteration is the plain Schweitzer
    contraction plus two mild inner couplings (the blocking lock-wait
    and the restart delay both track ``r_proc``) — it converges
    unconditionally in practice. ``queues`` is mutated in place so
    callers can warm-start successive solves.

    ``capped`` solves the DBMS subnetwork alone (cycle excludes
    external think and restart delay: the saturated admission queue
    refills every freed slot instantly); otherwise the full closed
    loop over ``n`` customers.

    Returns ``(throughput, r_proc, blocked, attempts, converged,
    clamped)``.
    """
    p, attempts, clamped = _contention_terms(
        algorithm, m_eff, k, k_w, db, alpha, beta
    )
    waste = 0.5 * beta if algorithm == "immediate_restart" else beta
    inflation = 1.0 + (attempts - 1.0) * waste
    ratio = (n - 1.0) / n
    blocking = algorithm == "blocking"
    restarting = algorithm == "immediate_restart" and not capped
    count = len(groups)
    throughput = 0.0
    r_proc = 0.0
    blocked = 0.0
    converged = False
    for _ in range(MAX_ITERATIONS):
        r_proc = 0.0
        residences = []
        for index in range(count):
            kind, demand, servers, group_count = groups[index]
            demand_eff = demand * inflation
            if kind == _DELAY:
                r = demand_eff
            else:
                seen = queues[index] * ratio
                # Deterministic-service residual correction: the
                # simulator's service times are deterministic, so the
                # job found in service costs a mean residual of d/2,
                # not the full d exponential MVA assumes. Subtracting
                # half an in-service job (utilization-weighted)
                # removes the systematic low-mpl underprediction.
                if kind == _QUEUEING:
                    busy = throughput * demand_eff
                    if busy > seen:
                        busy = seen
                    if busy > 1.0:
                        busy = 1.0
                    r = demand_eff * (1.0 + seen - 0.5 * busy)
                else:  # Seidmann's split for the multi-server pool
                    busy = throughput * demand_eff / servers
                    if busy > seen:
                        busy = seen
                    if busy > 1.0:
                        busy = 1.0
                    r = (
                        demand_eff * (servers - 1.0) / servers
                        + demand_eff / servers
                        * (1.0 + seen - 0.5 * busy)
                    )
            residences.append(r)
            r_proc += r * group_count
        if blocking:
            # Wait-chain cascade: a conflicting request waits half the
            # blocker's processing time, but the blocker may itself be
            # blocked, adding its own wait pro rata. Solving
            # b = (beta*k*p/2) * (r_proc + b) in closed form gives the
            # 1/(1 - beta*k*p/2) amplification — this is what makes
            # blocking *thrash* (DC-thrashing) instead of merely
            # saturating as contention rises.
            fraction = k * p / 2.0
            denominator = beta * fraction
            if denominator > CASCADE_CLAMP:
                # Clamp the denominator only: the wait keeps growing
                # linearly in the blocked fraction past the clamp, so
                # throughput stays monotone (declining) instead of
                # rebounding once the amplification saturates.
                denominator = CASCADE_CLAMP
                clamped = True
            blocked = r_proc * fraction / (1.0 - denominator)
        else:
            blocked = 0.0
        r_in = r_proc + blocked
        if capped:
            cycle = r_in
        else:
            delay_out = (attempts - 1.0) * r_proc if restarting else 0.0
            cycle = z + delay_out + r_in
        new_throughput = n / cycle if cycle > 0.0 else 0.0
        for index in range(count):
            queues[index] = new_throughput * residences[index]
        if abs(new_throughput - throughput) <= TOLERANCE * max(
            new_throughput, 1e-12
        ):
            throughput = new_throughput
            converged = True
            break
        throughput = new_throughput
    return throughput, r_proc, blocked, attempts, converged, clamped


#: Cap on the ``beta*k*p/2`` term inside the wait-chain cascade
#: denominator: past it the cascade amplification is held at
#: 1/(1-CASCADE_CLAMP) and the prediction is marked clamped.
CASCADE_CLAMP = 0.95

#: Root-finder budget and tolerance for the closed-mode concurrency
#: fixed point (Illinois method over m_eff).
MAX_PROBES = 80
M_TOLERANCE = 1e-9


def _solve_closed(groups, n, z, mpl, algorithm, k, k_w, db,
                  alpha, beta):
    """Closed-loop solve: find the self-consistent concurrency level.

    The closed mode's only troublesome feedback is the in-DBMS
    population ``m_eff = min(mpl, X * R_in)`` feeding the conflict
    probability — jointly iterating it oscillates (clamps turn the
    restart algorithms into relaxation oscillators). Instead treat it
    as a 1-D root find: ``g(m) = min(mpl, X(m) * R_in(m)) - m`` with
    :func:`_solve_fixed_m` as the evaluator, bracketed on
    ``[0, min(mpl, n)]`` and resolved by the Illinois method
    (deterministic, bracket never lost, superlinear in practice).

    Returns ``(throughput, r_in, attempts, blocked, m_eff, converged,
    clamped, cap_binding)``. ``cap_binding`` reports whether the
    closed loop pushes the in-DBMS population all the way to the mpl
    cap — when it does not (the root is interior, e.g. the adaptive
    restart delay drains the admission queue), the capped solve's
    saturation assumption is invalid and this solution is the right
    regime.
    """
    m_max = min(float(mpl), float(n))
    queues = [0.0] * len(groups)

    def probe(m_eff):
        result = _solve_fixed_m(
            groups, n, z, m_eff, algorithm, k, k_w, db,
            alpha, beta, False, queues,
        )
        throughput, r_proc, blocked = result[0], result[1], result[2]
        gap = min(float(mpl), throughput * (r_proc + blocked)) - m_eff
        return result, gap

    def finish(m_eff, result, converged, cap_binding):
        throughput, r_proc, blocked, attempts, inner_ok, clamped = result
        return (
            throughput, r_proc + blocked, attempts, blocked, m_eff,
            converged and inner_ok, clamped, cap_binding,
        )

    if alpha == 0.0:
        # Contention-free (noop or zeroed coefficients): m_eff does
        # not feed back, a single solve is exact.
        result = _solve_fixed_m(
            groups, n, z, m_max, algorithm, k, k_w, db,
            alpha, beta, False, queues,
        )
        in_dbms = result[0] * (result[1] + result[2])
        return finish(min(float(mpl), in_dbms), result, True,
                      in_dbms >= m_max)

    hi, (result_hi, gap_hi) = m_max, probe(m_max)
    if gap_hi >= -M_TOLERANCE * max(m_max, 1.0):
        # Even at full concurrency the loop wants more customers in
        # the DBMS than the cap admits: the cap itself is the answer.
        return finish(m_max, result_hi, True, True)
    lo, (result_lo, gap_lo) = 0.0, probe(0.0)
    tolerance = M_TOLERANCE * max(m_max, 1.0)
    side = 0
    m_eff, result, gap = lo, result_lo, gap_lo
    converged = False
    for _ in range(MAX_PROBES):
        spread = gap_lo - gap_hi
        if spread > 0.0:
            m_eff = (gap_lo * hi - gap_hi * lo) / spread
        if spread <= 0.0 or not (lo < m_eff < hi):
            m_eff = 0.5 * (lo + hi)
        result, gap = probe(m_eff)
        if abs(gap) <= tolerance or hi - lo <= tolerance:
            converged = True
            break
        if gap > 0.0:
            lo, gap_lo = m_eff, gap
            if side == 1:
                gap_hi *= 0.5  # Illinois: stop false-position stalls
            side = 1
        else:
            hi, gap_hi = m_eff, gap
            if side == -1:
                gap_lo *= 0.5
            side = -1
    return finish(m_eff, result, converged, False)


def _solve_capped(groups, n, z, mpl, algorithm, k, k_w, db,
                  alpha, beta):
    """Admission-saturated solve: ``min(mpl, n)`` customers, DBMS only.

    With the admission queue never empty the concurrency level is
    pinned at the cap — a single fixed-m solve.

    Same return shape as :func:`_solve_closed`.
    """
    m_eff = float(min(mpl, n))
    queues = [0.0] * len(groups)
    result = _solve_fixed_m(
        groups, int(m_eff), z, m_eff, algorithm, k, k_w, db,
        alpha, beta, True, queues,
    )
    throughput, r_proc, blocked, attempts, converged, clamped = result
    return (
        throughput, r_proc + blocked, attempts, blocked, m_eff,
        converged, clamped, True,
    )


def surrogate_prediction(params, algorithm, coeffs=None):
    """Contention-corrected throughput prediction for one grid point.

    ``params`` supplies the physical configuration *and* the mpl;
    ``coeffs`` is a :class:`CorrectionCoefficients` (None looks the
    algorithm up in :data:`DEFAULT_COEFFS`). Unknown algorithms raise
    ``ValueError`` — the surrogate only has correction terms for
    :data:`SUPPORTED_ALGORITHMS`.
    """
    if algorithm not in SUPPORTED_ALGORITHMS:
        raise ValueError(
            f"surrogate has no contention terms for {algorithm!r}; "
            f"supported: {SUPPORTED_ALGORITHMS}"
        )
    if coeffs is None:
        coeffs = DEFAULT_COEFFS[algorithm]
    z, groups = compact_network(params)
    k_r = params.expected_reads()
    k_w = params.expected_writes()
    k = k_r + k_w
    db = float(params.db_size)
    population = params.num_terms
    mpl = params.mpl

    closed = _solve_closed(
        groups, population, z, mpl, algorithm, k, k_w, db,
        coeffs.alpha, coeffs.beta,
    )
    if mpl < population:
        capped = _solve_capped(
            groups, population, z, mpl, algorithm, k, k_w, db,
            coeffs.alpha, coeffs.beta,
        )
    else:
        capped = None
    if capped is not None and closed[7]:
        # The closed loop drives the in-DBMS population into the mpl
        # cap: admission saturates and the capped solve is the right
        # regime. An interior closed root (cap_binding False) means
        # steady state leaves the admission queue empty — e.g. the
        # adaptive restart delay throttling entry — and the capped
        # saturation assumption would be wrong.
        solution, binding = capped, "admission"
    else:
        solution, binding = closed, "population"
    (throughput, r_in, attempts, blocked, m_eff, converged, clamped,
     _cap_binding) = solution
    write_fraction = k_w / k if k > 0.0 else 0.0
    if throughput > 0.0:
        # Little's law over the whole closed loop: everything that is
        # not external think (admission wait and restart delay
        # included) is response time.
        response = population / throughput - z
    else:
        response = math.inf
    return SurrogatePrediction(
        algorithm=algorithm,
        mpl=mpl,
        population=population,
        throughput=throughput,
        response_time=max(response, 0.0),
        attempts=attempts,
        blocked_time=blocked,
        m_eff=m_eff,
        contention_index=(
            m_eff * k * k / db
            * write_fraction * (2.0 - write_fraction)
        ),
        converged=converged,
        clamped=clamped,
        binding=binding,
    )


def surrogate_curve(params, algorithm, mpls, coeffs=None):
    """[(mpl, SurrogatePrediction)] over an mpl sweep."""
    return [
        (mpl, surrogate_prediction(
            params.with_changes(mpl=mpl), algorithm, coeffs
        ))
        for mpl in mpls
    ]


def optimal_mpl(params, algorithm, mpls, coeffs=None):
    """(mpl, prediction) maximizing predicted throughput over ``mpls``.

    Ties break toward the *lowest* mpl (less concurrency for the same
    throughput is strictly better operationally).
    """
    curve = surrogate_curve(params, algorithm, mpls, coeffs)
    if not curve:
        raise ValueError("mpls must be non-empty")
    return max(curve, key=lambda pair: (pair[1].throughput, -pair[0]))
