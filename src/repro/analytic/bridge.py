"""Bridging SimulationParameters to the MVA network.

The contention-free view of the paper's model is a product-form closed
network: ``num_terms`` customers cycling through a terminal delay
(external think time), an optional internal-think delay, a CPU pool
(multi-server), and ``num_disks`` disks (single-server each, visited
uniformly). :func:`mva_prediction` solves it; the ``noop`` baseline of
the simulator must track the prediction wherever the mpl limit is not
binding (mpl >= num_terms means no admission queueing, which MVA does
not model).
"""

from repro.analytic.mva import (
    Center,
    DELAY,
    MULTI_SERVER,
    QUEUEING,
    solve_closed_network,
    solve_curve,
)


def network_for_params(params):
    """The MVA centers equivalent to a parameter configuration.

    Raises ValueError for infinite-resource configurations (model them
    as delay-only networks by conversion, which this function does
    automatically) — actually infinite resources simply become delay
    centers, so everything is representable.
    """
    accesses = params.expected_reads() + params.expected_writes()
    cpu_demand = accesses * params.obj_cpu
    disk_demand = accesses * params.obj_io

    centers = [Center("terminals", DELAY, params.ext_think_time)]
    if params.int_think_time > 0.0:
        centers.append(
            Center("internal_think", DELAY, params.int_think_time)
        )

    if params.num_cpus is None:
        centers.append(Center("cpu", DELAY, cpu_demand))
    elif params.num_cpus == 1:
        centers.append(Center("cpu", QUEUEING, cpu_demand))
    else:
        centers.append(
            Center(
                "cpu", MULTI_SERVER, cpu_demand,
                servers=params.num_cpus,
            )
        )

    if params.num_disks is None:
        centers.append(Center("disks", DELAY, disk_demand))
    else:
        per_disk = disk_demand / params.num_disks
        for index in range(params.num_disks):
            centers.append(Center(f"disk{index}", QUEUEING, per_disk))
    return centers


def mva_prediction(params, population=None):
    """Contention-free MVA solution for a configuration.

    ``population`` defaults to the terminal count (``None`` is the
    sentinel: an explicit non-positive population is a ValueError, it
    never silently falls back to ``num_terms``). The prediction
    ignores the mpl admission limit and all data contention, so it is
    exact (modulo deterministic-vs-exponential service) only for the
    ``noop`` baseline with mpl >= num_terms, and an upper bound
    otherwise.
    """
    if population is None:
        population = params.num_terms
    elif population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    return solve_closed_network(network_for_params(params), population)


def predicted_curve(params, populations=None):
    """[(population, predicted throughput)] over a population sweep.

    ``populations`` of ``None`` sweeps 1..``num_terms``; an explicit
    empty sequence is a ValueError (it is not a request for the
    default sweep), as is any non-positive population in it.
    """
    if populations is not None:
        populations = list(populations)
        if not populations:
            raise ValueError(
                "populations must be a non-empty sequence or None"
            )
        bad = [p for p in populations if p < 1]
        if bad:
            raise ValueError(f"populations must be >= 1, got {bad}")
    top = max(populations) if populations is not None else params.num_terms
    curve = solve_curve(network_for_params(params), top)
    wanted = set(populations) if populations is not None else None
    return [
        (result.population, result.throughput)
        for result in curve
        if wanted is None or result.population in wanted
    ]
