"""Exact Mean-Value Analysis for single-class closed queuing networks.

Implements the Reiser–Lavenberg recursion over population n = 1..N:

* **delay** centers (infinite servers): R_i(n) = D_i;
* **queueing** centers (one FCFS/PS server):
  R_i(n) = D_i * (1 + Q_i(n-1));
* **multi-server** centers (m identical servers): treated exactly as a
  load-dependent center via the marginal-probability recursion
  (Reiser), with service rate mu(j) = min(j, m) / D_i per customer in
  residence.

With exponential service, these results are exact for product-form
networks; the simulator uses deterministic service times, so
predictions match to within a few percent (the tests pin the
tolerance).

Example — the classic machine-repairman sanity check::

    >>> centers = [Center("think", DELAY, 10.0),
    ...            Center("repair", QUEUEING, 1.0)]
    >>> result = solve_closed_network(centers, population=5)
    >>> round(result.throughput, 3) < 1.0  # can't beat the repairman
    True
"""

from dataclasses import dataclass, field
from typing import Dict

DELAY = "delay"
QUEUEING = "queueing"
MULTI_SERVER = "multi_server"

_CENTER_TYPES = (DELAY, QUEUEING, MULTI_SERVER)


@dataclass(frozen=True)
class Center:
    """One service center: a name, a type, and a per-visit demand.

    ``demand`` is the total service demand one customer places on the
    center per pass through the network (visit ratio x service time).
    ``servers`` only applies to MULTI_SERVER centers.
    """

    name: str
    kind: str
    demand: float
    servers: int = 1

    def __post_init__(self):
        if self.kind not in _CENTER_TYPES:
            raise ValueError(
                f"kind must be one of {_CENTER_TYPES}, got {self.kind!r}"
            )
        if self.demand < 0.0:
            raise ValueError(f"demand must be >= 0, got {self.demand}")
        if self.kind == MULTI_SERVER and self.servers < 1:
            raise ValueError(
                f"multi-server center needs servers >= 1, "
                f"got {self.servers}"
            )


@dataclass
class MvaResult:
    """MVA solution at one population level."""

    population: int
    throughput: float
    response_time: float
    #: center name -> mean residence time (queueing + service).
    residence_times: Dict[str, float] = field(default_factory=dict)
    #: center name -> mean queue length (customers in residence).
    queue_lengths: Dict[str, float] = field(default_factory=dict)
    #: center name -> utilization (per-server busy fraction).
    utilizations: Dict[str, float] = field(default_factory=dict)

    def bottleneck(self):
        """Name of the center with the highest utilization.

        Equally-utilized centers (e.g. identical disks) tie-break by
        center name, so the answer never depends on dict insertion
        order and reports are deterministic.
        """
        if not self.utilizations:
            return None
        best = max(self.utilizations.values())
        return min(
            name for name, util in self.utilizations.items()
            if util == best
        )


def solve_closed_network(centers, population):
    """Exact MVA for ``population`` customers over ``centers``.

    Returns the :class:`MvaResult` at the full population. Use
    :func:`solve_curve` for the whole 1..N sweep.
    """
    return solve_curve(centers, population)[-1]


def solve_curve(centers, population):
    """MVA results for every population level 1..``population``."""
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    centers = list(centers)
    names = [center.name for center in centers]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate center names in {names}")

    queue = {center.name: 0.0 for center in centers}
    # Marginal probabilities p_i(j | n) for load-dependent (multi-server)
    # centers; p[center][j] with j customers present.
    marginals = {
        center.name: [1.0] + [0.0] * population
        for center in centers
        if center.kind == MULTI_SERVER
    }
    results = []
    for n in range(1, population + 1):
        residence = {}
        for center in centers:
            if center.kind == DELAY:
                residence[center.name] = center.demand
            elif center.kind == QUEUEING:
                residence[center.name] = center.demand * (
                    1.0 + queue[center.name]
                )
            else:  # MULTI_SERVER: load-dependent residence time
                residence[center.name] = _multi_server_residence(
                    center, marginals[center.name], n
                )
        total_residence = sum(residence.values())
        delay_demand = sum(
            center.demand for center in centers if center.kind == DELAY
        )
        # Delay centers contribute to cycle time but are already in
        # total_residence (their residence == demand).
        throughput = n / total_residence if total_residence > 0 else 0.0

        for center in centers:
            if center.kind == DELAY:
                queue[center.name] = throughput * center.demand
            else:
                queue[center.name] = throughput * residence[center.name]
        for center in centers:
            if center.kind == MULTI_SERVER:
                _update_marginals(
                    center, marginals[center.name], n, throughput
                )

        utilizations = {}
        for center in centers:
            if center.kind == DELAY:
                utilizations[center.name] = 0.0
            elif center.kind == QUEUEING:
                utilizations[center.name] = min(
                    1.0, throughput * center.demand
                )
            else:
                utilizations[center.name] = min(
                    1.0, throughput * center.demand / center.servers
                )
        results.append(
            MvaResult(
                population=n,
                throughput=throughput,
                response_time=total_residence - delay_demand,
                residence_times=dict(residence),
                queue_lengths=dict(queue),
                utilizations=utilizations,
            )
        )
    return results


def _multi_server_residence(center, marginal, n):
    """Mean residence time at a multi-server center with n in network.

    Uses the exact load-dependent formulation: a customer arriving when
    j others are present (probability p(j | n-1) by the arrival
    theorem) sees service rate min(j+1, m)/D once it enters service;
    the standard recursion computes R_i(n) = sum_j (j+1)/mu(j+1) *
    p_i(j | n-1) with mu(j) = min(j, m)/D.
    """
    demand = center.demand
    servers = center.servers
    if demand == 0.0:
        return 0.0
    total = 0.0
    for j in range(n):
        rate = min(j + 1, servers) / demand
        total += (j + 1) / rate * marginal[j]
    return total


def _update_marginals(center, marginal, n, throughput):
    """Advance p_i(j | n-1) -> p_i(j | n) for a load-dependent center."""
    demand = center.demand
    servers = center.servers
    if demand == 0.0:
        return
    new = [0.0] * (len(marginal))
    for j in range(1, n + 1):
        rate = min(j, servers) / demand
        new[j] = (throughput / rate) * marginal[j - 1]
    new[0] = max(0.0, 1.0 - sum(new[1: n + 1]))
    marginal[: n + 1] = new[: n + 1]
