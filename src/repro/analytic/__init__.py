"""Analytical companion models for the simulated queuing network.

The paper sits in a literature split between *simulation* studies and
*analytical* studies of concurrency control; this package provides the
analytical side for the contention-free substrate so the two can be
checked against each other:

* :mod:`repro.analytic.mva` — exact Mean-Value Analysis
  (Reiser–Lavenberg) of single-class closed queuing networks with
  delay, single-server, and multi-server (load-dependent) centers;
* :mod:`repro.analytic.bridge` — builds the MVA network corresponding
  to a :class:`~repro.core.SimulationParameters` configuration and
  predicts contention-free throughput/response curves that the ``noop``
  baseline must track.

Data contention (the algorithms' blocking and restarts) only *lowers*
throughput below these predictions, so MVA also acts as a per-point
upper bound oracle — a sharper one than the asymptotic bounds of
:mod:`repro.analysis.bounds`.
"""

from repro.analytic.mva import (
    Center,
    DELAY,
    MULTI_SERVER,
    MvaResult,
    QUEUEING,
    solve_closed_network,
)
from repro.analytic.approx import solve_closed_network_approx
from repro.analytic.bridge import (
    mva_prediction,
    network_for_params,
    predicted_curve,
)

__all__ = [
    "Center",
    "DELAY",
    "QUEUEING",
    "MULTI_SERVER",
    "MvaResult",
    "solve_closed_network",
    "solve_closed_network_approx",
    "network_for_params",
    "mva_prediction",
    "predicted_curve",
]
