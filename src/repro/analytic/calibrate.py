"""Calibration: fit the surrogate's coefficients against simulation.

The GVCUTV discipline applied to the analytic layer: the *equations*
(:mod:`repro.analytic.contention`) are only trusted after they are
*validated* against the independent discrete-event implementation of
the same model. This module runs that validation loop end to end:

1. **Simulate** a small seeded grid (Table 2 variations spanning mild
   to heavy data contention) through :func:`run_sweep` — the same
   resilient runner the real experiments use, so seeds, batching and
   checkpointing behave identically;
2. **Fit** each algorithm's :class:`CorrectionCoefficients` by
   deterministic multiplicative coordinate descent on the squared
   log-ratio of predicted vs. simulated throughput (symmetric in
   over-/under-prediction, scale-free across scenarios);
3. **Report** per-point divergence (:mod:`repro.stats.divergence`)
   plus the largest contention index the grid covered — the
   extrapolation boundary :mod:`repro.analytic.explore` uses to decide
   which surrogate predictions deserve a simulation spot-check.

The whole calibration is reproducible: same seed, same grid, same
run profile -> bit-identical report (the fit itself is closed-form
deterministic arithmetic, and sweep seeds derive from the grid key).

Fitted defaults are baked into
:data:`repro.analytic.contention.DEFAULT_COEFFS`; re-run
``repro-experiments calibrate`` after any change to the contention
model and update them from the emitted report.
"""

import json
from dataclasses import dataclass
from typing import Dict, List

from repro.analytic.contention import (
    CorrectionCoefficients,
    DEFAULT_COEFFS,
    surrogate_prediction,
)
from repro.core import SimulationParameters
from repro.experiments.configs import ExperimentConfig
from repro.experiments.persistence import atomic_write_text
from repro.experiments.runner import QUICK_RUN, run_sweep
from repro.stats import abs_relative_error, log_ratio, summarize_divergence

#: Algorithms the calibration fits (noop needs no correction: its
#: coefficients are zero by construction).
CALIBRATED_ALGORITHMS = ("blocking", "immediate_restart", "optimistic")

#: Multiplicative step schedule of the coordinate descent: each round
#: tries every factor on each coordinate and keeps improvements; the
#: shrinking schedule gives coarse-to-fine search without randomness.
FIT_FACTORS = (4.0, 2.0, 1.4, 1.15, 1.05, 1.02)
FIT_ROUNDS = 3
COEFF_FLOOR = 1e-3
COEFF_CEIL = 100.0


def calibration_grid(base=None):
    """The seeded calibration scenarios.

    Returns ``[(scenario_id, params, mpls)]``: Table 2 itself plus a
    hot (small database) and a cool (large database, more disks)
    variant, with mpl points on both sides of each algorithm's
    throughput peak. Deliberately small — calibration re-simulates it
    on every run.
    """
    base = base or SimulationParameters.table2()
    return [
        ("table2", base, (5, 10, 25, 50)),
        ("hot", base.with_changes(db_size=300), (5, 10, 25, 50)),
        ("cool", base.with_changes(db_size=3000, num_disks=4),
         (10, 50)),
        ("write_heavy", base.with_changes(db_size=500, write_prob=0.75),
         (5, 10, 25)),
    ]


@dataclass(frozen=True)
class CalibrationPoint:
    """One grid point: simulation truth vs. calibrated prediction."""

    scenario: str
    algorithm: str
    mpl: int
    simulated: float
    predicted: float
    abs_rel_error: float
    contention_index: float

    def as_dict(self):
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "mpl": self.mpl,
            "simulated": self.simulated,
            "predicted": self.predicted,
            "abs_rel_error": self.abs_rel_error,
            "contention_index": self.contention_index,
        }


@dataclass
class CalibrationReport:
    """Fitted coefficients plus the per-point validation evidence."""

    coefficients: Dict[str, CorrectionCoefficients]
    points: List[CalibrationPoint]
    #: Largest contention index the grid covered: the surrogate's
    #: extrapolation boundary (see SurrogatePrediction.uncertainty).
    max_index: float
    seed: int

    def points_for(self, algorithm):
        return [p for p in self.points if p.algorithm == algorithm]

    def divergence(self, algorithm=None):
        """DivergenceSummary over all points (or one algorithm's)."""
        points = (
            self.points_for(algorithm) if algorithm else self.points
        )
        return summarize_divergence(p.abs_rel_error for p in points)

    def to_json(self):
        return json.dumps(
            {
                "seed": self.seed,
                "max_index": self.max_index,
                "coefficients": {
                    name: {"alpha": c.alpha, "beta": c.beta}
                    for name, c in sorted(self.coefficients.items())
                },
                "points": [p.as_dict() for p in self.points],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(
            coefficients={
                name: CorrectionCoefficients(c["alpha"], c["beta"])
                for name, c in data["coefficients"].items()
            },
            points=[CalibrationPoint(**p) for p in data["points"]],
            max_index=data["max_index"],
            seed=data["seed"],
        )

    def save(self, path):
        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def simulate_grid(run=None, grid=None, progress=None, workers=1):
    """Ground-truth throughputs for the calibration grid.

    Returns ``[(scenario, params, algorithm, mpl, throughput)]`` in
    deterministic grid order. Failed sweep points (the runner degrades
    rather than raises) are skipped — the fit uses whatever points
    simulation actually produced.
    """
    run = run or QUICK_RUN
    samples = []
    for scenario, params, mpls in grid or calibration_grid():
        config = ExperimentConfig(
            experiment_id=f"calibrate_{scenario}",
            title=f"Surrogate calibration grid: {scenario}",
            figures=(),
            params=params,
            algorithms=CALIBRATED_ALGORITHMS,
            mpls=tuple(mpls),
        )
        sweep = run_sweep(
            config, run=run, progress=progress, workers=workers
        )
        for algorithm in CALIBRATED_ALGORITHMS:
            for mpl in mpls:
                result = sweep.results.get((algorithm, mpl))
                if result is not None and result.throughput > 0.0:
                    samples.append(
                        (scenario, params, algorithm, mpl,
                         result.throughput)
                    )
    return samples


def _objective(samples, coeffs):
    """Sum of squared log-ratios of predicted vs simulated throughput."""
    total = 0.0
    for _, params, algorithm, mpl, simulated in samples:
        predicted = surrogate_prediction(
            params.with_changes(mpl=mpl), algorithm, coeffs
        ).throughput
        if predicted <= 0.0:
            return float("inf")
        total += log_ratio(predicted, simulated) ** 2
    return total


def fit_coefficients(samples, start=None):
    """Deterministic coordinate descent over (alpha, beta).

    ``samples`` are one algorithm's grid points. Coarse-to-fine
    multiplicative steps (:data:`FIT_FACTORS` x :data:`FIT_ROUNDS`),
    no randomness, bounded to [COEFF_FLOOR, COEFF_CEIL]: the same
    samples always fit to the same coefficients.
    """
    start = start or CorrectionCoefficients(1.0, 1.0)
    best = [start.alpha, start.beta]
    best_score = _objective(samples, CorrectionCoefficients(*best))
    for _ in range(FIT_ROUNDS):
        for factor in FIT_FACTORS:
            improved = True
            while improved:
                improved = False
                for coord in (0, 1):
                    for direction in (factor, 1.0 / factor):
                        trial = list(best)
                        trial[coord] = min(
                            COEFF_CEIL,
                            max(COEFF_FLOOR, trial[coord] * direction),
                        )
                        if trial == best:
                            continue
                        score = _objective(
                            samples, CorrectionCoefficients(*trial)
                        )
                        if score < best_score - 1e-15:
                            best, best_score = trial, score
                            improved = True
    return CorrectionCoefficients(*best)


def run_calibration(run=None, grid=None, fit=True, progress=None,
                    workers=1):
    """Simulate the grid, fit coefficients, report divergence.

    ``fit=False`` skips the descent and validates the current
    :data:`DEFAULT_COEFFS` instead (a pure validation run).
    """
    run = run or QUICK_RUN
    samples = simulate_grid(
        run=run, grid=grid, progress=progress, workers=workers
    )
    if not samples:
        raise RuntimeError(
            "calibration grid produced no simulation points"
        )
    coefficients = {"noop": DEFAULT_COEFFS["noop"]}
    for algorithm in CALIBRATED_ALGORITHMS:
        subset = [s for s in samples if s[2] == algorithm]
        if not subset:
            coefficients[algorithm] = DEFAULT_COEFFS[algorithm]
            continue
        if fit:
            coefficients[algorithm] = fit_coefficients(subset)
        else:
            coefficients[algorithm] = DEFAULT_COEFFS[algorithm]

    points = []
    max_index = 0.0
    for scenario, params, algorithm, mpl, simulated in samples:
        prediction = surrogate_prediction(
            params.with_changes(mpl=mpl), algorithm,
            coefficients[algorithm],
        )
        max_index = max(max_index, prediction.contention_index)
        points.append(
            CalibrationPoint(
                scenario=scenario,
                algorithm=algorithm,
                mpl=mpl,
                simulated=simulated,
                predicted=prediction.throughput,
                abs_rel_error=abs_relative_error(
                    prediction.throughput, simulated
                ),
                contention_index=prediction.contention_index,
            )
        )
    return CalibrationReport(
        coefficients=coefficients,
        points=points,
        max_index=max_index,
        seed=run.seed,
    )
