"""Parameter-space exploration through the calibrated surrogate.

The payoff of the calibrate -> validate pipeline: once the surrogate
tracks simulation to within a few percent on the calibration grid
(:mod:`repro.analytic.calibrate`), parameter spaces five orders of
magnitude too big to simulate become sweepable. A
:class:`ExplorationSpace` is a cross product over the paper's
physical axes (database size, transaction size, disks, CPUs, write
probability, think time) x mpl x algorithm; the explorer streams
through it evaluating :func:`surrogate_prediction` at a few hundred
microseconds per point (>=100k points in well under a minute) and
aggregates two artifacts the paper cares about:

* the **optimal-mpl surface** — for every configuration and
  algorithm, the multiprogramming level that maximizes predicted
  throughput (the paper's central "where does thrashing start"
  question, asked everywhere at once), and
* the **blocking/optimistic crossover frontier** — the configurations
  where the winner flips between the conservative and the aggressive
  algorithm family as contention rises along the database-size axis
  (the paper's headline result, traced across the whole space).

Trust, but verify: every prediction carries the uncertainty score
from :meth:`SurrogatePrediction.uncertainty`. Points beyond the
calibration boundary (or where the solver clamped) are *flagged*, and
the explorer dispatches real simulation spot-checks for the most
uncertain flagged configurations — through the same
:func:`repro.experiments.runner.run_sweep` machinery the paper
experiments use — recording surrogate-vs-simulation divergence next
to the surrogate's claims. Reports persist as JSON via the atomic
persistence layer.
"""

import time
from dataclasses import dataclass, field
from typing import List, Tuple

import json

from repro.analytic.contention import (
    DEFAULT_MAX_INDEX,
    surrogate_prediction,
)
from repro.core import SimulationParameters
from repro.experiments.configs import ExperimentConfig
from repro.experiments.persistence import atomic_write_text
from repro.experiments.runner import QUICK_RUN, run_sweep
from repro.stats import abs_relative_error

#: The two algorithm families whose crossover the frontier traces.
FRONTIER_PAIR = ("blocking", "optimistic")

#: Hard cap on flagged points retained verbatim in a report (the
#: *count* is always exact; the list keeps the most uncertain ones).
MAX_FLAGGED_RETAINED = 64


@dataclass(frozen=True)
class ExplorationSpace:
    """A cross product of configuration axes to sweep.

    ``size()`` counts (configuration, algorithm, mpl) evaluations.
    Axis values land on :meth:`SimulationParameters.with_changes`;
    ``min_size`` follows ``max_size`` down so the transaction-size
    distribution stays valid at small sizes.
    """

    db_sizes: Tuple[int, ...]
    max_sizes: Tuple[int, ...]
    num_disks: Tuple[int, ...]
    num_cpus: Tuple[int, ...]
    write_probs: Tuple[float, ...]
    ext_think_times: Tuple[float, ...]
    mpls: Tuple[int, ...]
    algorithms: Tuple[str, ...]

    def __post_init__(self):
        for name in (
            "db_sizes", "max_sizes", "num_disks", "num_cpus",
            "write_probs", "ext_think_times", "mpls", "algorithms",
        ):
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")

    def config_count(self):
        return (
            len(self.db_sizes) * len(self.max_sizes)
            * len(self.num_disks) * len(self.num_cpus)
            * len(self.write_probs) * len(self.ext_think_times)
        )

    def size(self):
        return (
            self.config_count() * len(self.mpls) * len(self.algorithms)
        )

    def configurations(self, base=None):
        """Yields ``(axes_dict, params)`` for every configuration."""
        base = base or SimulationParameters.table2()
        for db_size in self.db_sizes:
            for max_size in self.max_sizes:
                min_size = min(base.min_size, max_size)
                for disks in self.num_disks:
                    for cpus in self.num_cpus:
                        for write_prob in self.write_probs:
                            for think in self.ext_think_times:
                                axes = {
                                    "db_size": db_size,
                                    "max_size": max_size,
                                    "num_disks": disks,
                                    "num_cpus": cpus,
                                    "write_prob": write_prob,
                                    "ext_think_time": think,
                                }
                                yield axes, base.with_changes(
                                    min_size=min_size, **axes
                                )

    def as_dict(self):
        return {
            "db_sizes": list(self.db_sizes),
            "max_sizes": list(self.max_sizes),
            "num_disks": list(self.num_disks),
            "num_cpus": list(self.num_cpus),
            "write_probs": list(self.write_probs),
            "ext_think_times": list(self.ext_think_times),
            "mpls": list(self.mpls),
            "algorithms": list(self.algorithms),
        }


def default_space():
    """The standard exploration space: 113,400 surrogate evaluations.

    5,400 configurations x 7 mpls x 3 algorithms — the full cross of
    the paper's contention and resource axes, impossibly expensive to
    simulate (a quick-profile simulation of every point would take
    around four days; the surrogate does it in about half a minute).
    """
    return ExplorationSpace(
        db_sizes=(250, 500, 1000, 2000, 4000, 8000),
        max_sizes=(4, 8, 12, 16, 24),
        # The disk/CPU axes deliberately reach the paper's
        # resource-rich regime (25 disks, 10 CPUs): that is where
        # restarts become cheap and the blocking/optimistic winner
        # flips.
        num_disks=(1, 2, 8, 25),
        num_cpus=(1, 2, 10),
        write_probs=(0.0, 0.25, 0.5, 0.75, 1.0),
        ext_think_times=(0.5, 1.0, 2.0),
        mpls=(5, 10, 25, 50, 75, 100, 200),
        algorithms=("blocking", "immediate_restart", "optimistic"),
    )


def smoke_space():
    """A tiny space for CI smoke runs (36 evaluations)."""
    return ExplorationSpace(
        db_sizes=(300, 2000),
        max_sizes=(12,),
        num_disks=(2,),
        num_cpus=(1,),
        write_probs=(0.25,),
        ext_think_times=(1.0,),
        mpls=(5, 25, 100),
        algorithms=("blocking", "immediate_restart", "optimistic"),
    )


@dataclass
class ExplorationReport:
    """Everything one exploration run learned."""

    space: dict
    evaluations: int
    elapsed_seconds: float
    max_index: float
    threshold: float
    #: One record per configuration: its axes, each algorithm's
    #: optimal mpl (the optimal-mpl surface), and the winner overall
    #: plus within the blocking/optimistic pair.
    optimal: List[dict] = field(default_factory=list)
    #: Winner flips along the database-size (contention) axis within
    #: the blocking/optimistic pair.
    crossovers: List[dict] = field(default_factory=list)
    #: Exact number of evaluations whose uncertainty exceeded the
    #: threshold (the retained list below is capped).
    flagged_count: int = 0
    flagged: List[dict] = field(default_factory=list)
    #: Simulation spot-checks of the most uncertain flagged points.
    spot_checks: List[dict] = field(default_factory=list)

    def to_json(self):
        return json.dumps(
            {
                "space": self.space,
                "evaluations": self.evaluations,
                "elapsed_seconds": self.elapsed_seconds,
                "max_index": self.max_index,
                "threshold": self.threshold,
                "optimal": self.optimal,
                "crossovers": self.crossovers,
                "flagged_count": self.flagged_count,
                "flagged": self.flagged,
                "spot_checks": self.spot_checks,
            },
            indent=2,
            sort_keys=True,
        )

    def save(self, path):
        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls(**json.loads(handle.read()))

    def summary(self):
        """A short human-readable digest (the CLI prints this)."""
        lines = [
            f"explored {self.evaluations} evaluations in "
            f"{self.elapsed_seconds:.1f}s "
            f"({1e6 * self.elapsed_seconds / max(self.evaluations, 1):.0f}"
            f" us/point)",
            f"configurations: {len(self.optimal)}  "
            f"crossover flips along db_size: {len(self.crossovers)}",
            f"flagged beyond calibration boundary: {self.flagged_count} "
            f"(threshold {self.threshold:g}, max index "
            f"{self.max_index:g})",
        ]
        wins = {}
        for record in self.optimal:
            wins[record["bo_winner"]] = wins.get(
                record["bo_winner"], 0
            ) + 1
        pair = " vs ".join(FRONTIER_PAIR)
        lines.append(
            f"{pair} wins: "
            + ", ".join(
                f"{name}={count}" for name, count in sorted(wins.items())
            )
        )
        for check in self.spot_checks:
            lines.append(
                f"spot-check {check['algorithm']} mpl={check['mpl']} "
                f"db={check['axes']['db_size']}: "
                f"sim={check['simulated']:.3f} "
                f"pred={check['predicted']:.3f} "
                f"err={check['abs_rel_error']:.1%}"
            )
        return "\n".join(lines)


def explore(space=None, coeffs=None, max_index=None, threshold=1.0,
            spot_check_budget=0, run=None, base=None, progress=None,
            workers=1):
    """Sweep ``space`` through the surrogate; spot-check what it flags.

    ``coeffs`` maps algorithm -> CorrectionCoefficients (None uses the
    baked-in calibrated defaults); ``max_index`` is the calibration
    boundary for the uncertainty score (None uses the baked-in one).
    ``spot_check_budget`` caps how many flagged points are re-checked
    with real simulation (0 disables; checks reuse ``run_sweep`` with
    the ``run`` profile, default QUICK_RUN).
    """
    space = space or default_space()
    if max_index is None:
        max_index = DEFAULT_MAX_INDEX
    started = time.perf_counter()
    evaluations = 0
    optimal = []
    flagged_count = 0
    flagged = []
    for axes, params in space.configurations(base=base):
        best = {}
        for algorithm in space.algorithms:
            coefficients = None if coeffs is None else coeffs[algorithm]
            best_mpl = None
            best_prediction = None
            worst_uncertainty = 0.0
            for mpl in space.mpls:
                prediction = surrogate_prediction(
                    params.with_changes(mpl=mpl), algorithm,
                    coefficients,
                )
                evaluations += 1
                uncertainty = prediction.uncertainty(max_index)
                if uncertainty > threshold:
                    flagged_count += 1
                    flagged.append(
                        {
                            "axes": axes,
                            "algorithm": algorithm,
                            "mpl": mpl,
                            "predicted": prediction.throughput,
                            "uncertainty": uncertainty,
                        }
                    )
                if uncertainty > worst_uncertainty:
                    worst_uncertainty = uncertainty
                if (
                    best_prediction is None
                    or prediction.throughput
                    > best_prediction.throughput
                ):
                    best_mpl = mpl
                    best_prediction = prediction
            best[algorithm] = {
                "mpl": best_mpl,
                "throughput": best_prediction.throughput,
                "uncertainty": worst_uncertainty,
            }
        record = dict(axes)
        record["best"] = best
        record["winner"] = max(
            space.algorithms, key=lambda a: best[a]["throughput"]
        )
        if all(a in best for a in FRONTIER_PAIR):
            first, second = FRONTIER_PAIR
            record["bo_winner"] = (
                first
                if best[first]["throughput"]
                >= best[second]["throughput"]
                else second
            )
        else:
            record["bo_winner"] = record["winner"]
        optimal.append(record)
        if progress is not None and len(optimal) % 500 == 0:
            progress(
                f"[explore] {len(optimal)}/{space.config_count()} "
                f"configurations, {flagged_count} flagged"
            )
    # Retain only the most uncertain flagged points verbatim.
    flagged.sort(key=lambda f: -f["uncertainty"])
    retained = flagged[:MAX_FLAGGED_RETAINED]
    elapsed = time.perf_counter() - started

    report = ExplorationReport(
        space=space.as_dict(),
        evaluations=evaluations,
        elapsed_seconds=elapsed,
        max_index=max_index,
        threshold=threshold,
        optimal=optimal,
        crossovers=_crossovers(optimal),
        flagged_count=flagged_count,
        flagged=retained,
        spot_checks=[],
    )
    if spot_check_budget > 0 and retained:
        report.spot_checks = _spot_check(
            retained[:spot_check_budget], coeffs, run=run, base=base,
            progress=progress, workers=workers,
        )
    return report


def _crossovers(optimal):
    """Winner flips between FRONTIER_PAIR along the db_size axis.

    Groups the optimal-mpl records by every axis except ``db_size``,
    orders each group by database size (descending contention), and
    records each adjacent pair whose blocking/optimistic winner
    differs — the crossover frontier.
    """
    groups = {}
    for record in optimal:
        key = tuple(
            (axis, value)
            for axis, value in sorted(record.items())
            if axis not in ("db_size", "best", "winner", "bo_winner")
        )
        groups.setdefault(key, []).append(record)
    crossovers = []
    for key, records in sorted(groups.items()):
        records.sort(key=lambda r: r["db_size"])
        for low, high in zip(records, records[1:]):
            if low["bo_winner"] != high["bo_winner"]:
                crossovers.append(
                    {
                        "axes": dict(key),
                        "db_low": low["db_size"],
                        "winner_low": low["bo_winner"],
                        "db_high": high["db_size"],
                        "winner_high": high["bo_winner"],
                    }
                )
    return crossovers


def _spot_check(points, coeffs, run=None, base=None, progress=None,
                workers=1):
    """Simulate the flagged points and record the divergence."""
    run = run or QUICK_RUN
    base = base or SimulationParameters.table2()
    checks = []
    for index, point in enumerate(points):
        axes = point["axes"]
        params = base.with_changes(
            min_size=min(base.min_size, axes["max_size"]), **axes
        )
        algorithm = point["algorithm"]
        mpl = point["mpl"]
        config = ExperimentConfig(
            experiment_id=f"spotcheck_{index}",
            title=f"Surrogate spot-check {index}",
            figures=(),
            params=params,
            algorithms=(algorithm,),
            mpls=(mpl,),
        )
        sweep = run_sweep(
            config, run=run, progress=progress, workers=workers
        )
        result = sweep.results.get((algorithm, mpl))
        if result is None:
            checks.append(
                {**point, "simulated": None, "abs_rel_error": None,
                 "status": "failed"}
            )
            continue
        checks.append(
            {
                **point,
                "simulated": result.throughput,
                "abs_rel_error": abs_relative_error(
                    point["predicted"], result.throughput
                ),
                "status": "ok",
            }
        )
    return checks
