"""Named fault scenarios (the CLI's ``--inject <scenario>`` choices).

Scenarios are plain :class:`~repro.faults.spec.FaultSpec` values sized
against the paper's Table 2 time scale (35 ms disk accesses, batch
times of tens of seconds), so every scenario produces several fault
events within a default sweep.  :func:`register_scenario` is the
extension point for user studies.
"""

from repro.faults.spec import (
    AccessFaultSpec,
    CpuDegradationSpec,
    DiskFaultSpec,
    FaultSpec,
)

__all__ = ["SCENARIOS", "scenario", "scenario_names", "register_scenario"]

SCENARIOS = {
    # A disk fails about once a minute and takes ~5 s to repair: the
    # availability-under-contention stress used by exp6_disk_faults.
    "disk_crash": FaultSpec(disk=DiskFaultSpec(mttf=60.0, mttr=5.0)),
    # Pathological storage: failures every ~15 s, repairs ~5 s, so a
    # disk is down roughly a quarter of the time.
    "disk_storm": FaultSpec(disk=DiskFaultSpec(mttf=15.0, mttr=5.0)),
    # Thermal-throttling style brownouts: half-speed CPU ~10 s out of
    # every ~40 s.
    "cpu_brownout": FaultSpec(
        cpu=CpuDegradationSpec(mean_interval=30.0, mean_duration=10.0,
                               factor=2.0)
    ),
    # Media-level transient faults: ~1 access in 500 aborts its
    # transaction (a few restarts per batch at Table 2 sizes).
    "transient_access": FaultSpec(access=AccessFaultSpec(prob=0.002)),
    # Everything at once, for worst-case availability studies.
    "mixed": FaultSpec(
        disk=DiskFaultSpec(mttf=60.0, mttr=5.0),
        cpu=CpuDegradationSpec(mean_interval=40.0, mean_duration=8.0,
                               factor=2.0),
        access=AccessFaultSpec(prob=0.001),
    ),
    # The explicit null scenario: proves injection plumbing is inert.
    "none": FaultSpec(),
}


def scenario_names():
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario(name):
    """Look up a scenario by name (ValueError lists valid names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; "
            f"choose from {scenario_names()}"
        ) from None


def register_scenario(name, spec):
    """Register a user-supplied scenario (returned for chaining)."""
    if not name:
        raise ValueError("scenario name must be non-empty")
    if not isinstance(spec, FaultSpec):
        raise TypeError(f"spec must be a FaultSpec, got {type(spec)!r}")
    SCENARIOS[name] = spec
    return spec
