"""Declarative fault specifications.

The paper's verdicts hinge on *resource modeling assumptions*; this
module extends the physical model's vocabulary with unhealthy resources.
A :class:`FaultSpec` describes, declaratively, which faults a run
injects:

* :class:`DiskFaultSpec` — disks crash and are repaired (exponential
  MTTF/MTTR).  While a disk is down its queue stalls, so transactions
  holding locks wait and contention spreads — the availability-under-
  contention axis.
* :class:`CpuDegradationSpec` — windows during which CPU service takes
  ``factor`` times longer (thermal throttling, noisy neighbours).
* :class:`AccessFaultSpec` — transient per-object-access faults that
  force the accessing transaction to restart (media read errors,
  transient corruption detected by checksums).

Specs are pure data (no simulation state) so they can live inside
:class:`~repro.core.params.SimulationParameters` and be hashed/compared;
the driving processes live in :mod:`repro.faults.injector`.  All faults
draw from dedicated named RNG streams, so a given ``(FaultSpec, seed)``
pair is bit-reproducible and a zero-rate spec leaves every healthy-run
stream untouched.
"""

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DiskFaultSpec",
    "CpuDegradationSpec",
    "AccessFaultSpec",
    "FaultSpec",
]


def _require_positive(owner, name, value):
    if value <= 0 or math.isnan(value):
        raise ValueError(f"{owner}: {name} must be > 0, got {value}")


@dataclass(frozen=True)
class DiskFaultSpec:
    """Disk crash/repair process parameters.

    Each disk fails independently: up for Exp(``mttf``) seconds, then
    down for Exp(``mttr``) seconds, repeating.  A down disk finishes its
    in-flight transfer but admits no new service until repaired (the
    repair claims the disk at a priority above all transaction I/O).
    """

    #: Mean time to failure, seconds of simulated time (exponential).
    mttf: float = 60.0
    #: Mean time to repair, seconds of simulated time (exponential).
    mttr: float = 5.0

    def __post_init__(self):
        _require_positive("DiskFaultSpec", "mttf", self.mttf)
        _require_positive("DiskFaultSpec", "mttr", self.mttr)


@dataclass(frozen=True)
class CpuDegradationSpec:
    """CPU service-rate degradation windows.

    The CPU pool alternates healthy periods of Exp(``mean_interval``)
    with degraded windows of Exp(``mean_duration``) during which every
    CPU service demand is multiplied by ``factor`` (> 1 = slower).  The
    factor is sampled once at service start; a window boundary does not
    retroactively stretch or shrink service already in progress.
    """

    #: Mean healthy time between degradation windows (exponential).
    mean_interval: float = 60.0
    #: Mean length of one degradation window (exponential).
    mean_duration: float = 10.0
    #: Service-demand multiplier while degraded (2.0 = half speed).
    factor: float = 2.0

    def __post_init__(self):
        _require_positive("CpuDegradationSpec", "mean_interval",
                          self.mean_interval)
        _require_positive("CpuDegradationSpec", "mean_duration",
                          self.mean_duration)
        if self.factor <= 1.0 or math.isnan(self.factor):
            raise ValueError(
                f"CpuDegradationSpec: factor must be > 1, "
                f"got {self.factor}"
            )


@dataclass(frozen=True)
class AccessFaultSpec:
    """Transient object-access faults.

    Each object access (read or write-request work, i.e. anything
    before the commit point) independently faults with probability
    ``prob``; a faulted access aborts the attempt with restart reason
    ``access_fault`` and the transaction retries from the start with
    the same read/write sets.  Accesses after the commit point never
    fault: once a transaction's writes are installed it can no longer
    abort.
    """

    #: Pr[one object access faults]; 0 disables without removing the spec.
    prob: float = 0.001

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0 or math.isnan(self.prob):
            raise ValueError(
                f"AccessFaultSpec: prob must be in [0, 1], got {self.prob}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """Everything a run injects; ``FaultSpec()`` injects nothing.

    A spec with every component None (or an access component with
    ``prob == 0``) is *null*: the injector starts no processes and the
    run is bit-identical to one with no spec at all.
    """

    disk: Optional[DiskFaultSpec] = None
    cpu: Optional[CpuDegradationSpec] = None
    access: Optional[AccessFaultSpec] = None

    @property
    def is_null(self):
        """True when this spec cannot perturb a run in any way."""
        return (
            self.disk is None
            and self.cpu is None
            and (self.access is None or self.access.prob == 0.0)
        )

    def describe(self):
        """One-line human-readable summary (used in reports/CLI)."""
        parts = []
        if self.disk is not None:
            parts.append(
                f"disk mttf={self.disk.mttf:g}s mttr={self.disk.mttr:g}s"
            )
        if self.cpu is not None:
            parts.append(
                f"cpu x{self.cpu.factor:g} every "
                f"~{self.cpu.mean_interval:g}s for "
                f"~{self.cpu.mean_duration:g}s"
            )
        if self.access is not None:
            parts.append(f"access fault p={self.access.prob:g}")
        return "; ".join(parts) if parts else "no faults"
