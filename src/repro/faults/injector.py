"""The fault injector: processes that realize a :class:`FaultSpec`.

One :class:`FaultInjector` per :class:`~repro.core.engine.SystemModel`.
It owns dedicated RNG streams (``faults.disk.<i>``, ``faults.cpu``,
``faults.access``) derived from the run's root seed, so fault timing is
deterministic per seed and — because streams are independent — adding
fault draws never perturbs the healthy model's random sequences.

Fault mechanics:

* **Disk crash/repair** — one lifecycle process per disk.  A failure
  claims the disk through its normal request queue at
  :data:`REPAIR_PRIORITY` (above all transaction I/O), holds it for the
  repair time, and releases it.  In-flight service completes (crash-
  consistency of individual transfers is out of scope); everything
  queued behind the failure waits out the repair.  Repair holds are
  *not* recorded in the disk's :class:`~repro.des.BusyTracker`, so
  utilization metrics keep meaning "time spent serving transactions".
* **CPU degradation** — a single process toggles the injector's
  ``cpu_factor`` between 1.0 and ``spec.cpu.factor``; the physical model
  multiplies CPU service demands by the factor in effect at service
  start.
* **Transient access faults** — the physical model asks
  :meth:`check_access_fault` before each pre-commit object access; a hit
  raises :class:`~repro.cc.errors.RestartTransaction` with reason
  :data:`~repro.cc.errors.REASON_ACCESS_FAULT`, which the engine handles
  exactly like a concurrency-control restart.
"""

from repro.cc.errors import REASON_ACCESS_FAULT, RestartTransaction

#: Priority for repair claims on a disk: above every transaction request
#: (disk requests use the default priority 0; lower sorts first).
REPAIR_PRIORITY = -1

__all__ = ["FaultInjector", "REPAIR_PRIORITY"]


class FaultInjector:
    """Drives the fault processes of one simulation run.

    Construct with a non-null spec, then call :meth:`start` once to
    attach to the physical model and launch the lifecycle processes.
    """

    def __init__(self, env, spec, physical, streams, trace=None):
        self.env = env
        self.spec = spec
        self.physical = physical
        self.streams = streams
        #: Optional callable ``trace(kind, **fields)`` for event logs.
        self.trace = trace
        #: Current CPU service-demand multiplier (1.0 = healthy).
        self.cpu_factor = 1.0
        # -- cumulative fault statistics (reported in run totals) --
        self.disk_failures = 0
        self.disk_downtime = 0.0
        self.disks_down = 0
        self.cpu_degradations = 0
        self.cpu_degraded_time = 0.0
        self.access_faults = 0
        self._access_rng = None
        if spec.access is not None and spec.access.prob > 0.0:
            self._access_rng = streams.stream("faults.access")

    def start(self):
        """Attach to the physical model and launch fault processes."""
        self.physical.faults = self
        if self.spec.disk is not None:
            if self.physical.params.num_disks is None:
                raise ValueError(
                    "disk faults require finite disks "
                    "(num_disks is None: infinite resources)"
                )
            for index, disk in enumerate(self.physical.disks):
                self.env.process(self._disk_lifecycle(index, disk))
        if self.spec.cpu is not None:
            self.env.process(self._cpu_lifecycle())
        return self

    # -- disk crash/repair ---------------------------------------------------

    def _disk_lifecycle(self, index, disk):
        spec = self.spec.disk
        rng = self.streams.stream(f"faults.disk.{index}")
        while True:
            yield self.env.timeout(rng.exponential(spec.mttf))
            with disk.request(priority=REPAIR_PRIORITY) as claim:
                yield claim
                # Disk is now ours: down for the repair duration.
                self.disk_failures += 1
                self.disks_down += 1
                failed_at = self.env.now
                self._trace("disk_fail", disk=index)
                try:
                    yield self.env.timeout(rng.exponential(spec.mttr))
                finally:
                    self.disks_down -= 1
                    self.disk_downtime += self.env.now - failed_at
                    self._trace("disk_repair", disk=index,
                                downtime=self.env.now - failed_at)

    # -- CPU degradation windows ---------------------------------------------

    def _cpu_lifecycle(self):
        spec = self.spec.cpu
        rng = self.streams.stream("faults.cpu")
        while True:
            yield self.env.timeout(rng.exponential(spec.mean_interval))
            self.cpu_degradations += 1
            self.cpu_factor = spec.factor
            degraded_at = self.env.now
            self._trace("cpu_degrade", factor=spec.factor)
            yield self.env.timeout(rng.exponential(spec.mean_duration))
            self.cpu_factor = 1.0
            self.cpu_degraded_time += self.env.now - degraded_at
            self._trace("cpu_restore")

    # -- transient access faults ---------------------------------------------

    def check_access_fault(self, tx):
        """Maybe fail one pre-commit object access of ``tx``.

        Raises RestartTransaction(REASON_ACCESS_FAULT) on a hit; the
        engine's normal restart path re-runs the transaction with the
        same read/write sets.
        """
        if self._access_rng is None:
            return
        if self._access_rng.bernoulli(self.spec.access.prob):
            self.access_faults += 1
            self._trace("access_fault", tx=tx.id, attempt=tx.attempts)
            raise RestartTransaction(
                REASON_ACCESS_FAULT,
                f"transient fault accessing an object of tx {tx.id}",
            )

    # -- reporting -----------------------------------------------------------

    def summary(self):
        """Cumulative fault statistics for the run's totals."""
        return {
            "spec": self.spec.describe(),
            "disk_failures": self.disk_failures,
            "disk_downtime": self.disk_downtime,
            "cpu_degradations": self.cpu_degradations,
            "cpu_degraded_time": self.cpu_degraded_time,
            "access_faults": self.access_faults,
        }

    def _trace(self, kind, **fields):
        if self.trace is not None:
            self.trace(kind, **fields)
