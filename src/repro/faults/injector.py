"""The fault injector: processes that realize a :class:`FaultSpec`.

One :class:`FaultInjector` per :class:`~repro.core.engine.SystemModel`.
It owns dedicated RNG streams (``faults.disk.<i>``, ``faults.cpu``,
``faults.access``) derived from the run's root seed, so fault timing is
deterministic per seed and — because streams are independent — adding
fault draws never perturbs the healthy model's random sequences.

Fault occurrences are published on the run's instrumentation bus
(:mod:`repro.obs`) as ``disk_fail``/``disk_repair``/``cpu_degrade``/
``cpu_restore``/``access_fault`` events; the injector's own cumulative
statistics are kept by a :class:`~repro.obs.FaultAccountingSubscriber`
it attaches, so fault accounting, fault tracing and fault streaming all
ride the same event stream.

Fault mechanics:

* **Disk crash/repair** — one lifecycle process per disk.  A failure
  claims the disk through its normal request queue at
  :data:`REPAIR_PRIORITY` (above all transaction I/O), holds it for the
  repair time, and releases it.  In-flight service completes (crash-
  consistency of individual transfers is out of scope); everything
  queued behind the failure waits out the repair.  Repair holds are
  *not* recorded in the disk's :class:`~repro.des.BusyTracker`, so
  utilization metrics keep meaning "time spent serving transactions".
* **CPU degradation** — a single process toggles the injector's
  ``cpu_factor`` between 1.0 and ``spec.cpu.factor``; the physical model
  multiplies CPU service demands by the factor in effect at service
  start.
* **Transient access faults** — the physical model asks
  :meth:`check_access_fault` before each pre-commit object access; a hit
  raises :class:`~repro.cc.errors.RestartTransaction` with reason
  :data:`~repro.cc.errors.REASON_ACCESS_FAULT`, which the engine handles
  exactly like a concurrency-control restart.
"""

from repro.cc.errors import REASON_ACCESS_FAULT, RestartTransaction
from repro.obs.bus import InstrumentationBus
from repro.obs.events import (
    FAULT_ACCESS,
    FAULT_CPU_DEGRADE,
    FAULT_CPU_RESTORE,
    FAULT_DISK_FAIL,
    FAULT_DISK_REPAIR,
)
from repro.obs.subscribers import FaultAccountingSubscriber

#: Priority for repair claims on a disk: above every transaction request
#: (disk requests use the default priority 0; lower sorts first).
REPAIR_PRIORITY = -1

__all__ = ["FaultInjector", "REPAIR_PRIORITY"]


class FaultInjector:
    """Drives the fault processes of one simulation run.

    Construct with a non-null spec, then call :meth:`start` once to
    attach to the physical model and launch the lifecycle processes.
    ``bus`` is the run's instrumentation bus; standalone use (tests)
    may omit it, in which case the injector creates a private one.
    """

    def __init__(self, env, spec, physical, streams, bus=None):
        self.env = env
        self.spec = spec
        self.physical = physical
        self.streams = streams
        self.bus = bus if bus is not None else InstrumentationBus(env)
        #: Cumulative fault statistics, maintained off the event stream.
        self.accounting = self.bus.attach(FaultAccountingSubscriber())
        #: Current CPU service-demand multiplier (1.0 = healthy).
        self.cpu_factor = 1.0
        self._access_rng = None
        if spec.access is not None and spec.access.prob > 0.0:
            self._access_rng = streams.stream("faults.access")

    def start(self):
        """Attach to the resource model and launch fault processes."""
        self.physical.faults = self
        if self.spec.disk is not None:
            # The resource model decides which disks a fault process may
            # crash; infinite models expose none (claiming an infinite
            # server would block nobody), so injecting against them is a
            # configuration error, not a silent no-op.
            targets = self.physical.disk_fault_targets()
            if not targets:
                raise ValueError(
                    "disk faults require finite disks "
                    "(this resource model exposes no crashable disks)"
                )
            for index, disk in targets:
                self.env.process(self._disk_lifecycle(index, disk))
        if self.spec.cpu is not None:
            self.env.process(self._cpu_lifecycle())
        return self

    # -- cumulative statistics (delegated to the accounting subscriber) ------

    @property
    def disk_failures(self):
        return self.accounting.disk_failures

    @property
    def disk_downtime(self):
        return self.accounting.disk_downtime

    @property
    def disks_down(self):
        return self.accounting.disks_down

    @property
    def cpu_degradations(self):
        return self.accounting.cpu_degradations

    @property
    def cpu_degraded_time(self):
        return self.accounting.cpu_degraded_time

    @property
    def access_faults(self):
        return self.accounting.access_faults

    # -- disk crash/repair ---------------------------------------------------

    def _disk_lifecycle(self, index, disk):
        spec = self.spec.disk
        rng = self.streams.stream(f"faults.disk.{index}")
        while True:
            yield self.env.timeout(rng.exponential(spec.mttf))
            with disk.request(priority=REPAIR_PRIORITY) as claim:
                yield claim
                # Disk is now ours: down for the repair duration.
                failed_at = self.env.now
                self.bus.emit(FAULT_DISK_FAIL, disk=index)
                try:
                    yield self.env.timeout(rng.exponential(spec.mttr))
                finally:
                    self.bus.emit(
                        FAULT_DISK_REPAIR, disk=index,
                        downtime=self.env.now - failed_at,
                    )

    # -- CPU degradation windows ---------------------------------------------

    def _cpu_lifecycle(self):
        spec = self.spec.cpu
        rng = self.streams.stream("faults.cpu")
        while True:
            yield self.env.timeout(rng.exponential(spec.mean_interval))
            self.cpu_factor = spec.factor
            degraded_at = self.env.now
            self.bus.emit(FAULT_CPU_DEGRADE, factor=spec.factor)
            yield self.env.timeout(rng.exponential(spec.mean_duration))
            self.cpu_factor = 1.0
            self.bus.emit(
                FAULT_CPU_RESTORE, duration=self.env.now - degraded_at
            )

    # -- transient access faults ---------------------------------------------

    def check_access_fault(self, tx):
        """Maybe fail one pre-commit object access of ``tx``.

        Raises RestartTransaction(REASON_ACCESS_FAULT) on a hit; the
        engine's normal restart path re-runs the transaction with the
        same read/write sets.
        """
        if self._access_rng is None:
            return
        if self._access_rng.bernoulli(self.spec.access.prob):
            self.bus.emit(FAULT_ACCESS, tx=tx.id, attempt=tx.attempts)
            raise RestartTransaction(
                REASON_ACCESS_FAULT,
                f"transient fault accessing an object of tx {tx.id}",
            )

    # -- reporting -----------------------------------------------------------

    def summary(self):
        """Cumulative fault statistics for the run's totals."""
        accounting = self.accounting
        return {
            "spec": self.spec.describe(),
            "disk_failures": accounting.disk_failures,
            "disk_downtime": accounting.disk_downtime,
            "cpu_degradations": accounting.cpu_degradations,
            "cpu_degraded_time": accounting.cpu_degraded_time,
            "access_faults": accounting.access_faults,
        }
