"""Deterministic, seeded fault injection for the physical model.

The paper studies how *resource modeling assumptions* drive concurrency
control verdicts; this package extends the resource model past "always
healthy": disk crash/repair processes, CPU service-rate degradation
windows, and transient object-access faults, all declared by a
:class:`FaultSpec` carried on
:class:`~repro.core.params.SimulationParameters` and driven by a
:class:`FaultInjector` from dedicated RNG streams (bit-reproducible per
seed; a null spec is provably inert).
"""

from repro.faults.injector import REPAIR_PRIORITY, FaultInjector
from repro.faults.scenarios import (
    SCENARIOS,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.faults.spec import (
    AccessFaultSpec,
    CpuDegradationSpec,
    DiskFaultSpec,
    FaultSpec,
)

__all__ = [
    "FaultSpec",
    "DiskFaultSpec",
    "CpuDegradationSpec",
    "AccessFaultSpec",
    "FaultInjector",
    "REPAIR_PRIORITY",
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "register_scenario",
]
