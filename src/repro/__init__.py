"""repro — a reproduction of Agrawal, Carey & Livny (SIGMOD 1985):
"Models for Studying Concurrency Control Performance: Alternatives and
Implications".

A complete closed-queuing-model simulator of a single-site database
system, the paper's three concurrency-control strategies (blocking /
immediate-restart / optimistic) plus classic extensions, and a harness
that regenerates every figure in the paper's evaluation.

Quickstart::

    from repro import SimulationParameters, RunConfig, run_simulation

    params = SimulationParameters.table2(mpl=25)
    result = run_simulation(params, algorithm="blocking",
                            run=RunConfig(batches=10, batch_time=20.0))
    print(result.describe())
"""

from repro.cc import (
    PAPER_ALGORITHMS,
    algorithm_names,
    create_algorithm,
    register_algorithm,
)
from repro.core import (
    PAPER_MPLS,
    RunConfig,
    SimulationParameters,
    SimulationResult,
    SystemModel,
    TransactionClass,
    run_simulation,
    run_until_precision,
)
from repro.faults import (
    AccessFaultSpec,
    CpuDegradationSpec,
    DiskFaultSpec,
    FaultSpec,
)
from repro.obs import (
    InstrumentationBus,
    JsonlSink,
    TimeSeriesSampler,
)

__version__ = "1.0.0"

__all__ = [
    "SimulationParameters",
    "TransactionClass",
    "RunConfig",
    "SystemModel",
    "run_simulation",
    "run_until_precision",
    "SimulationResult",
    "InstrumentationBus",
    "TimeSeriesSampler",
    "JsonlSink",
    "FaultSpec",
    "DiskFaultSpec",
    "CpuDegradationSpec",
    "AccessFaultSpec",
    "PAPER_ALGORITHMS",
    "PAPER_MPLS",
    "algorithm_names",
    "create_algorithm",
    "register_algorithm",
    "__version__",
]
