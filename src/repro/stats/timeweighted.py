"""Time-weighted statistics for piecewise-constant signals.

Queue lengths, populations, and busy-server counts are step functions of
simulated time; their averages must be weighted by how long each value was
held, not by how many times it changed.
"""


class TimeWeighted:
    """Accumulate the time integral of a piecewise-constant signal.

    The signal changes via :meth:`update`; the time-average over any window
    is the accumulated area divided by elapsed time. Supports snapshot/delta
    for per-batch reporting, mirroring :class:`repro.stats.Welford`.

    >>> tw = TimeWeighted(initial=0.0, start_time=0.0)
    >>> tw.update(2.0, now=1.0)   # was 0 during [0, 1)
    >>> tw.update(4.0, now=3.0)   # was 2 during [1, 3)
    >>> tw.time_average(now=4.0)  # was 4 during [3, 4)
    2.0
    """

    __slots__ = ("_value", "_area", "_last_time", "_start_time")

    def __init__(self, initial=0.0, start_time=0.0):
        self._value = initial
        self._area = 0.0
        self._last_time = start_time
        self._start_time = start_time

    @property
    def value(self):
        """Current value of the signal."""
        return self._value

    def update(self, value, now):
        """Record that the signal takes ``value`` from time ``now`` on."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def add(self, delta, now):
        """Shift the signal by ``delta`` at time ``now`` (counter idiom).

        Duplicates :meth:`update` rather than delegating: this runs on
        every resource acquire/release, where the extra call shows up.
        """
        last = self._last_time
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        self._area += self._value * (now - last)
        self._last_time = now
        self._value += delta

    def area(self, now):
        """Time integral of the signal over [start_time, now]."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        return self._area + self._value * (now - self._last_time)

    def time_average(self, now):
        """Time-weighted mean over [start_time, now] (0.0 if empty window)."""
        elapsed = now - self._start_time
        if elapsed <= 0.0:
            return 0.0
        return self.area(now) / elapsed

    def window_average(self, area_at_window_start, window_start, now):
        """Time-weighted mean over [window_start, now].

        ``area_at_window_start`` is the value :meth:`area` returned at
        ``window_start`` — the snapshot/delta idiom used at batch boundaries.
        """
        elapsed = now - window_start
        if elapsed <= 0.0:
            return 0.0
        return (self.area(now) - area_at_window_start) / elapsed

    def __repr__(self):
        return f"TimeWeighted(value={self._value!r})"
