"""Numerically stable running mean/variance (Welford's online algorithm)."""

import math


class Welford:
    """Online accumulator for count, mean, variance, min and max.

    Uses Welford's recurrence, which is numerically stable for long runs
    (the naive sum-of-squares formula loses precision catastrophically when
    the mean is large relative to the spread, which happens with simulated
    clock readings).

    >>> w = Welford()
    >>> for x in (2.0, 4.0, 6.0):
    ...     w.add(x)
    >>> w.mean
    4.0
    >>> w.variance
    4.0
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value):
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other):
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self):
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        """Sample variance (n-1 denominator); 0.0 with fewer than 2 points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def population_variance(self):
        """Population variance (n denominator); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self):
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def snapshot(self):
        """Return an independent copy (for per-batch deltas)."""
        copy = Welford()
        copy.count = self.count
        copy._mean = self._mean
        copy._m2 = self._m2
        copy.min = self.min
        copy.max = self.max
        return copy

    def delta_since(self, earlier):
        """Return a Welford holding observations added after ``earlier``.

        ``earlier`` must be a snapshot of this accumulator taken previously.
        This inverts :meth:`merge`: given totals for [0, now) and a snapshot
        for [0, then), it reconstructs the statistics of [then, now), which is
        exactly what per-batch statistics need. Min/max cannot be inverted, so
        the delta's min/max are copied from the cumulative accumulator.
        """
        if earlier.count > self.count:
            raise ValueError("snapshot is newer than the accumulator")
        result = Welford()
        result.count = self.count - earlier.count
        if result.count == 0:
            return result
        total_sum = self._mean * self.count
        earlier_sum = earlier._mean * earlier.count
        result._mean = (total_sum - earlier_sum) / result.count
        delta = earlier._mean - result._mean
        result._m2 = self._m2 - earlier._m2 - (
            delta * delta * earlier.count * result.count / self.count
        )
        if result._m2 < 0.0:  # guard tiny negative round-off
            result._m2 = 0.0
        result.min = self.min
        result.max = self.max
        return result

    def __len__(self):
        return self.count

    def __repr__(self):
        return (
            f"Welford(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )
