"""Streaming quantile estimation (the P² algorithm).

Response-time *distributions* matter to users (the paper makes a point
of immediate-restart's high variance); percentiles complement the mean
and standard deviation. Storing every observation of a long simulation
is wasteful, so we use the P² algorithm of Jain & Chlamtac (CACM 1985 —
a contemporary of the paper): five markers per tracked quantile,
adjusted with parabolic interpolation, O(1) memory and time per
observation.
"""


class P2Quantile:
    """Streaming estimator of one quantile via the P² algorithm.

    >>> q = P2Quantile(0.5)
    >>> for x in range(1, 101):
    ...     q.add(float(x))
    >>> 45.0 <= q.value <= 56.0
    True
    """

    __slots__ = ("p", "_initial", "_heights", "_positions", "_desired",
                 "_increments", "count")

    def __init__(self, p):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._initial = []
        self._heights = None
        self._positions = None
        self._desired = None
        self._increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def add(self, value):
        """Fold one observation into the estimator."""
        self.count += 1
        if self._heights is None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ]
            return
        heights = self._heights
        positions = self._positions

        # Find the cell the new value falls into; clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        # Adjust the three interior markers toward their desired spots.
        for index in (1, 2, 3):
            delta = self._desired[index] - positions[index]
            if (delta >= 1.0
                    and positions[index + 1] - positions[index] > 1.0):
                self._shift(index, +1)
            elif (delta <= -1.0
                    and positions[index - 1] - positions[index] < -1.0):
                self._shift(index, -1)

    def _shift(self, index, direction):
        heights = self._heights
        positions = self._positions
        d = float(direction)
        candidate = self._parabolic(index, d)
        if heights[index - 1] < candidate < heights[index + 1]:
            heights[index] = candidate
        else:  # parabolic estimate left the bracket: fall back to linear
            heights[index] = heights[index] + d * (
                heights[index + direction] - heights[index]
            ) / (positions[index + direction] - positions[index])
        positions[index] += d

    def _parabolic(self, i, d):
        h = self._heights
        n = self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    @property
    def value(self):
        """Current estimate (exact while fewer than 5 observations)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return 0.0
        ordered = sorted(self._initial)
        index = min(
            len(ordered) - 1, int(round(self.p * (len(ordered) - 1)))
        )
        return ordered[index]

    def __repr__(self):
        return (
            f"P2Quantile(p={self.p}, value={self.value:.6g}, "
            f"count={self.count})"
        )
