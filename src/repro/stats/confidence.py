"""Student-t confidence intervals.

scipy is used for exact t quantiles when importable; otherwise an embedded
two-sided table (the classic textbook values) with interpolation is used, so
the core library carries no hard third-party dependency.
"""

import math
from dataclasses import dataclass

try:  # pragma: no cover - exercised indirectly depending on environment
    from scipy.stats import t as _scipy_t
except ImportError:  # pragma: no cover
    _scipy_t = None

# Two-sided critical values t_{df, 1 - alpha/2} for the confidence levels the
# harness uses. Rows are degrees of freedom; the df=inf row is the normal
# quantile. Values from standard t tables.
_T_TABLE = {
    0.90: {
        1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943,
        7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812, 12: 1.782, 15: 1.753,
        20: 1.725, 25: 1.708, 30: 1.697, 40: 1.684, 60: 1.671, 120: 1.658,
        math.inf: 1.645,
    },
    0.95: {
        1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
        20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
        math.inf: 1.960,
    },
    0.99: {
        1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707,
        7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169, 12: 3.055, 15: 2.947,
        20: 2.845, 25: 2.787, 30: 2.750, 40: 2.704, 60: 2.660, 120: 2.617,
        math.inf: 2.576,
    },
}


def t_quantile(confidence, df):
    """Two-sided Student-t critical value for the given confidence level.

    ``confidence`` is the total coverage (e.g. 0.90 for the paper's 90%
    intervals); ``df`` the degrees of freedom (> 0).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if _scipy_t is not None:
        return float(_scipy_t.ppf(0.5 + confidence / 2.0, df))
    if confidence not in _T_TABLE:
        raise ValueError(
            "without scipy, only confidence levels "
            f"{sorted(_T_TABLE)} are supported, got {confidence}"
        )
    table = _T_TABLE[confidence]
    if df in table:
        return table[df]
    dfs = sorted(d for d in table if d is not math.inf)
    if df > dfs[-1]:
        # Interpolate in 1/df between the largest tabulated df and infinity.
        lo, hi = dfs[-1], math.inf
        frac = (1.0 / lo - 1.0 / df) / (1.0 / lo)
        return table[lo] + frac * (table[hi] - table[lo])
    for lo, hi in zip(dfs, dfs[1:]):
        if lo < df < hi:
            frac = (df - lo) / (hi - lo)
            return table[lo] + frac * (table[hi] - table[lo])
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± half_width``."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self):
        return self.mean - self.half_width

    @property
    def high(self):
        return self.mean + self.half_width

    @property
    def relative_half_width(self):
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0.0:
            return math.inf if self.half_width else 0.0
        return abs(self.half_width / self.mean)

    def contains(self, value):
        return self.low <= value <= self.high

    def __str__(self):
        return (
            f"{self.mean:.4g} ± {self.half_width:.2g} "
            f"({self.confidence:.0%}, n={self.n})"
        )


def interval_from_samples(samples, confidence=0.90):
    """Student-t confidence interval for the mean of i.i.d. ``samples``."""
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean, math.inf, confidence, 1)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = t_quantile(confidence, n - 1) * math.sqrt(var / n)
    return ConfidenceInterval(mean, half, confidence, n)
