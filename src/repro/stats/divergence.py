"""Divergence math for model-vs-simulation validation reports.

Small, dependency-free helpers shared by the analytic-surrogate
calibration (:mod:`repro.analytic.calibrate`) and its tests: per-point
relative errors plus an order-statistics summary. Kept in the stats
package so validation arithmetic is tested once, not re-derived inside
every report writer.
"""

import math
from dataclasses import dataclass


def abs_relative_error(predicted, actual):
    """|predicted - actual| / |actual|.

    ``actual`` of zero only compares equal to a zero prediction
    (error 0.0); any other prediction against a zero truth is an
    infinite relative error, never a ZeroDivisionError.
    """
    if actual == 0.0:
        return 0.0 if predicted == 0.0 else math.inf
    return abs(predicted - actual) / abs(actual)


def log_ratio(predicted, actual):
    """ln(predicted / actual) — the symmetric fitting residual.

    Unlike the relative error, over- and under-prediction by the same
    factor score the same magnitude, which is what a least-squares fit
    of multiplicative coefficients wants. Both arguments must be
    positive.
    """
    if predicted <= 0.0 or actual <= 0.0:
        raise ValueError(
            f"log_ratio needs positive values, got "
            f"predicted={predicted}, actual={actual}"
        )
    return math.log(predicted / actual)


def median(values):
    """Plain median (mean of the middle pair for even counts)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of an empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class DivergenceSummary:
    """Order statistics of a batch of per-point divergences."""

    count: int
    median: float
    mean: float
    max: float

    def as_dict(self):
        return {
            "count": self.count,
            "median": self.median,
            "mean": self.mean,
            "max": self.max,
        }


def summarize_divergence(errors):
    """DivergenceSummary over an iterable of per-point errors."""
    errors = list(errors)
    if not errors:
        raise ValueError("summarize_divergence of an empty sequence")
    return DivergenceSummary(
        count=len(errors),
        median=median(errors),
        mean=sum(errors) / len(errors),
        max=max(errors),
    )
