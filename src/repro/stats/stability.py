"""Saturation/stability detection for open-system runs.

A closed model cannot saturate: its population is fixed, so offered
load self-throttles. An open model can — when the arrival rate exceeds
the system's service capacity (lambda >= mu), the backlog grows without
bound and every time-windowed statistic silently diverges. This module
turns that divergence into an explicit verdict: the run *is* saturated,
its steady-state metrics do not exist, and reports should say so
instead of printing a throughput number that is really just the
service capacity.

The detector is pure arithmetic over cumulative state, so both
execution lanes (classic and batched) can evaluate it at any batch
boundary with no extra instrumentation.
"""

from dataclasses import dataclass

__all__ = ["StabilityReport", "assess_stability"]

#: Minimum absolute backlog before a run can be called saturated —
#: small transients at start-up are not divergence.
BACKLOG_FLOOR = 50

#: A run whose completions keep up with at least this fraction of its
#: arrivals is draining; below it (with a large backlog) it is not.
DRAIN_THRESHOLD = 0.95


@dataclass(frozen=True)
class StabilityReport:
    """The stability verdict for one (window of an) open-system run."""

    #: First submissions observed (arrivals; resubmits excluded).
    submitted: int
    #: Commits observed.
    completed: int
    #: Wall of simulated time covered.
    elapsed: float
    #: Observed arrival rate (lambda-hat, per second).
    arrival_rate: float
    #: Observed completion rate (per second; the throughput, which
    #: under saturation measures capacity mu rather than demand).
    completion_rate: float
    #: Transactions in the system (ready + active + delayed).
    in_system: int
    #: completed / submitted — the fraction of offered work drained.
    drain_ratio: float
    #: True when the backlog indicates lambda >= mu.
    saturated: bool

    def as_dict(self):
        """JSON-friendly dict (checkpoint/report serialization)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "elapsed": self.elapsed,
            "arrival_rate": self.arrival_rate,
            "completion_rate": self.completion_rate,
            "in_system": self.in_system,
            "drain_ratio": self.drain_ratio,
            "saturated": self.saturated,
        }

    def describe(self):
        verdict = "SATURATED" if self.saturated else "stable"
        return (
            f"{verdict}: lambda={self.arrival_rate:.2f}/s "
            f"mu-hat={self.completion_rate:.2f}/s "
            f"in-system={self.in_system}"
        )


def assess_stability(submitted, completed, elapsed, mpl,
                     backlog_floor=BACKLOG_FLOOR,
                     drain_threshold=DRAIN_THRESHOLD):
    """Assess one open-system run from its cumulative counters.

    The verdict is saturated when the in-system population exceeds
    both ``backlog_floor`` and twice the multiprogramming limit (so a
    full-but-draining admission queue is not flagged) *and* completions
    drained less than ``drain_threshold`` of arrivals. An empty or
    zero-length window is trivially stable.
    """
    if elapsed < 0:
        raise ValueError(f"elapsed must be >= 0, got {elapsed}")
    in_system = submitted - completed
    if in_system < 0:
        raise ValueError(
            f"completed ({completed}) exceeds submitted ({submitted})"
        )
    arrival_rate = submitted / elapsed if elapsed > 0 else 0.0
    completion_rate = completed / elapsed if elapsed > 0 else 0.0
    drain_ratio = completed / submitted if submitted else 1.0
    saturated = (
        in_system > max(backlog_floor, 2 * mpl)
        and drain_ratio < drain_threshold
    )
    return StabilityReport(
        submitted=submitted,
        completed=completed,
        elapsed=elapsed,
        arrival_rate=arrival_rate,
        completion_rate=completion_rate,
        in_system=in_system,
        drain_ratio=drain_ratio,
        saturated=saturated,
    )
