"""The modified batch-means method used by the paper's statistical analysis.

The paper runs each simulation for 20 batches "with a large batch time" and
reports 90% confidence intervals on throughput of typically a few percent.
Batch means converts a single long run with autocorrelated output into
approximately independent samples: the run is split into contiguous batches,
early batches are discarded as warmup (the "modified" part), and a Student-t
interval is formed over the per-batch means.
"""

import math
from dataclasses import dataclass, field
from typing import List

from repro.stats.confidence import ConfidenceInterval, t_quantile


@dataclass
class BatchSeries:
    """Per-batch observations of one output variable."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, value):
        self.values.append(value)

    def __len__(self):
        return len(self.values)

    @property
    def mean(self):
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def variance(self):
        n = len(self.values)
        if n < 2:
            return 0.0
        m = self.mean
        return sum((v - m) ** 2 for v in self.values) / (n - 1)

    @property
    def std(self):
        return math.sqrt(self.variance)

    def interval(self, confidence=0.90):
        """Confidence interval for the grand mean over the batch means."""
        n = len(self.values)
        if n == 0:
            raise ValueError(f"series {self.name!r} has no batches")
        if n == 1:
            return ConfidenceInterval(self.mean, math.inf, confidence, 1)
        half = t_quantile(confidence, n - 1) * math.sqrt(self.variance / n)
        return ConfidenceInterval(self.mean, half, confidence, n)

    def lag1_autocorrelation(self):
        """Lag-1 autocorrelation of the batch means.

        A large positive value signals that batches are too short to be
        treated as independent; the analyzer surfaces it as a diagnostic.
        """
        n = len(self.values)
        if n < 3:
            return 0.0
        m = self.mean
        denom = sum((v - m) ** 2 for v in self.values)
        if denom == 0.0:
            return 0.0
        num = sum(
            (a - m) * (b - m) for a, b in zip(self.values, self.values[1:])
        )
        return num / denom


class BatchMeansAnalyzer:
    """Collects per-batch values for many variables and summarizes them.

    Usage: call :meth:`record` once per batch with a mapping of variable
    name to the batch's value, then ask for :meth:`interval` or
    :meth:`summary`. ``warmup_batches`` initial batches are recorded but
    excluded from analysis (the modified batch-means discipline).
    """

    def __init__(self, warmup_batches=1, confidence=0.90):
        if warmup_batches < 0:
            raise ValueError("warmup_batches must be >= 0")
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        self.warmup_batches = warmup_batches
        self.confidence = confidence
        self._batches_seen = 0
        self._series = {}

    @property
    def batches_recorded(self):
        """Number of post-warmup batches retained for analysis."""
        return max(0, self._batches_seen - self.warmup_batches)

    def record(self, values):
        """Record one batch: ``values`` maps variable name -> batch value."""
        self._batches_seen += 1
        if self._batches_seen <= self.warmup_batches:
            return
        for name, value in values.items():
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = BatchSeries(name)
            series.add(value)

    def series(self, name):
        """The retained :class:`BatchSeries` for ``name``."""
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(
                f"no batch series named {name!r}; "
                f"have {sorted(self._series)}"
            ) from None

    def names(self):
        return sorted(self._series)

    def mean(self, name):
        return self.series(name).mean

    def interval(self, name, confidence=None):
        # ``is None`` sentinel, not truthiness: an explicit (invalid)
        # falsy confidence must be rejected, not silently defaulted.
        if confidence is None:
            confidence = self.confidence
        elif not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        return self.series(name).interval(confidence)

    def summary(self):
        """Mapping of variable name -> ConfidenceInterval for all series."""
        return {
            name: series.interval(self.confidence)
            for name, series in self._series.items()
        }

    def diagnostics(self):
        """Mapping of variable name -> lag-1 autocorrelation of its batches."""
        return {
            name: series.lag1_autocorrelation()
            for name, series in self._series.items()
        }
