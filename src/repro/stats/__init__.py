"""Output-analysis substrate: running statistics, batch means, confidence intervals.

This package is dependency-free (scipy is used opportunistically for exact
Student-t quantiles, with an embedded table as fallback) and contains no
simulation logic, so both the DES kernel and the model layers can build on it.

The centerpiece is :class:`repro.stats.batch_means.BatchMeansAnalyzer`, an
implementation of the modified batch-means method the paper attributes to
[Sarg76]: the run is divided into batches, the first batch(es) are discarded
as warmup, and a Student-t confidence interval is formed from the per-batch
means.
"""

from repro.stats.welford import Welford
from repro.stats.timeweighted import TimeWeighted
from repro.stats.confidence import ConfidenceInterval, t_quantile
from repro.stats.batch_means import BatchMeansAnalyzer, BatchSeries
from repro.stats.divergence import (
    DivergenceSummary,
    abs_relative_error,
    log_ratio,
    median,
    summarize_divergence,
)
from repro.stats.quantile import P2Quantile
from repro.stats.stability import StabilityReport, assess_stability

__all__ = [
    "Welford",
    "TimeWeighted",
    "ConfidenceInterval",
    "t_quantile",
    "BatchMeansAnalyzer",
    "BatchSeries",
    "DivergenceSummary",
    "abs_relative_error",
    "log_ratio",
    "median",
    "summarize_divergence",
    "P2Quantile",
    "StabilityReport",
    "assess_stability",
]
