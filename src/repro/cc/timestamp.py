"""Basic Timestamp Ordering (the comparator of [Gall82] and [Lin83]).

Every transaction attempt carries a unique timestamp. Conflicting
accesses must occur in timestamp order:

* a read by T is rejected if some younger-stamped write already committed
  (``ts(T) < write_ts(obj)``);
* a read must wait for pending earlier-stamped prewrites to resolve
  (otherwise it would miss their values);
* a write (prewrite) by T is rejected if a younger-stamped read or write
  already got to the object first (``ts(T) < read_ts(obj)`` or, without
  the Thomas write rule, ``ts(T) < write_ts(obj)``).

Rejections restart the attempt, which re-runs with a fresh (younger)
timestamp. With the Thomas write rule enabled, obsolete writes are
silently skipped instead of restarting the writer.

Writes install at the commit point (deferred updates), which is when
``write_ts`` advances and blocked readers re-check.
"""

from repro.cc.base import (
    DELAY_NONE,
    INSTALL_AT_PRE_COMMIT,
    ConcurrencyControl,
    cc_units_written,
)
from repro.cc.errors import REASON_TIMESTAMP, RestartTransaction

#: Smaller than any real timestamp tuple (time, seq).
MIN_TS = (float("-inf"), -1)


class _ObjectState:
    """Timestamp bookkeeping for one object."""

    __slots__ = ("read_ts", "write_ts", "prewrites")

    def __init__(self):
        self.read_ts = MIN_TS
        self.write_ts = MIN_TS
        # tx -> list of waiter events to wake when the prewrite resolves.
        self.prewrites = {}

    def pending_before(self, ts):
        """Transactions with a pending prewrite stamped earlier than ts."""
        return [
            tx for tx in self.prewrites if tx.cc_timestamp < ts
        ]


class BasicTimestampOrderingCC(ConcurrencyControl):
    """Basic TO: conflicting accesses forced into timestamp order."""

    name = "basic_to"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_PRE_COMMIT

    def __init__(self, thomas_write_rule=False):
        super().__init__()
        self.thomas_write_rule = thomas_write_rule
        self._objects = {}
        self.rejections = 0

    def _state(self, obj):
        state = self._objects.get(obj)
        if state is None:
            state = self._objects[obj] = _ObjectState()
        return state

    def begin(self, tx):
        tx.to_skipped_writes = set()

    # -- reads ---------------------------------------------------------------

    def read_request(self, tx, obj):
        state = self._state(obj)
        ts = tx.cc_timestamp
        if ts < state.write_ts:
            self.rejections += 1
            raise RestartTransaction(
                REASON_TIMESTAMP,
                f"read of {obj} behind committed write",
            )
        pending = state.pending_before(ts)
        if pending and not all(p is tx for p in pending):
            # Wait for any one earlier prewrite to resolve, then the
            # engine re-issues the request and we re-check from scratch.
            blocker = next(p for p in pending if p is not tx)
            event = self.env.event()
            state.prewrites[blocker].append(event)
            self.hooks.count_block(tx)
            return event
        if ts > state.read_ts:
            state.read_ts = ts
        return None

    # -- writes (prewrites) ----------------------------------------------------

    def write_request(self, tx, obj):
        state = self._state(obj)
        ts = tx.cc_timestamp
        if ts < state.read_ts:
            self.rejections += 1
            raise RestartTransaction(
                REASON_TIMESTAMP,
                f"write of {obj} behind committed read",
            )
        if ts < state.write_ts:
            if self.thomas_write_rule:
                tx.to_skipped_writes.add(obj)
                return None
            self.rejections += 1
            raise RestartTransaction(
                REASON_TIMESTAMP,
                f"write of {obj} behind committed write",
            )
        state.prewrites.setdefault(tx, [])
        return None

    # -- commit/abort ------------------------------------------------------------

    def pre_commit(self, tx):
        """Install writes: advance write_ts, resolve prewrites, wake readers.

        With the Thomas write rule, writes that were obsolete at request
        time stay skipped; writes that became obsolete since (a younger
        writer committed first) are skipped here for the same reason.
        Skips are recorded as CC units in ``tx.to_skipped_writes``; the
        engine maps them back onto object-level writes.
        """
        for unit in cc_units_written(tx):
            state = self._state(unit)
            ts = tx.cc_timestamp
            if unit in tx.to_skipped_writes:
                self._resolve_prewrite(state, tx)
                continue
            if ts < state.write_ts:
                if self.thomas_write_rule:
                    tx.to_skipped_writes.add(unit)
                    self._resolve_prewrite(state, tx)
                    continue
                self._abort_prewrites(tx)
                self.rejections += 1
                raise RestartTransaction(
                    REASON_TIMESTAMP,
                    f"install of {unit} behind committed write",
                )
            state.write_ts = ts
            self._resolve_prewrite(state, tx)
        return None

    def abort(self, tx):
        self._abort_prewrites(tx)

    def serial_key(self, tx):
        """Basic TO serializes committed transactions in timestamp order."""
        return tx.cc_timestamp

    def _abort_prewrites(self, tx):
        for unit in cc_units_written(tx):
            state = self._objects.get(unit)
            if state is not None:
                self._resolve_prewrite(state, tx)

    @staticmethod
    def _resolve_prewrite(state, tx):
        waiters = state.prewrites.pop(tx, None)
        if not waiters:
            return
        for event in waiters:
            if not event.triggered:
                event.succeed()
