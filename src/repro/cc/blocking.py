"""The paper's Blocking algorithm: dynamic two-phase locking.

Transactions set read locks on objects they read and upgrade them to
write locks for objects they also write. A denied request blocks the
requester. Deadlock detection runs on every block over a waits-for graph;
the youngest transaction in the cycle is restarted (with no restart
delay — the same deadlock cannot arise again). Locks are released
together at end-of-transaction, after the deferred updates.
"""

from repro.cc.base import (
    DELAY_NONE,
    INSTALL_AT_FINALIZE,
    ConcurrencyControl,
    cc_units_written,
)
from repro.cc.errors import REASON_DEADLOCK, RestartTransaction
from repro.cc.locks import LockManager, LockMode
from repro.cc.waits_for import (
    build_waits_for,
    find_any_cycle,
    find_cycle_containing,
    youngest,
)


#: Deadlock-victim selection policies. The paper restarts the youngest
#: transaction in the cycle; the alternatives exist for ablation studies.
VICTIM_YOUNGEST = "youngest"
VICTIM_OLDEST = "oldest"
VICTIM_REQUESTER = "requester"

_VICTIM_POLICIES = (VICTIM_YOUNGEST, VICTIM_OLDEST, VICTIM_REQUESTER)

#: When deadlock detection runs. The paper detects "each time a
#: transaction blocks"; periodic detection (a cheaper choice some real
#: systems make) lets deadlocked transactions sit until the next scan.
DETECT_ON_BLOCK = "on_block"
DETECT_PERIODIC = "periodic"

_DETECTION_MODES = (DETECT_ON_BLOCK, DETECT_PERIODIC)

#: Write-lock acquisition policies. The paper's locking algorithms set
#: read locks first and upgrade later; since the model's transactions
#: know their write sets up front (the simulator replays fixed sets),
#: an implementation may instead take the exclusive lock at first read
#: of a to-be-written object, eliminating upgrade-upgrade deadlocks at
#: the cost of earlier, longer exclusive holds.
UPGRADE_LOCKS = "upgrade"
IMMEDIATE_EXCLUSIVE = "immediate_exclusive"

_WRITE_LOCK_POLICIES = (UPGRADE_LOCKS, IMMEDIATE_EXCLUSIVE)


class BlockingCC(ConcurrencyControl):
    """Dynamic 2PL: conflicts block; deadlocks restart the youngest."""

    name = "blocking"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_FINALIZE

    def __init__(self, victim_policy=VICTIM_YOUNGEST,
                 detection_mode=DETECT_ON_BLOCK,
                 detection_interval=1.0,
                 write_lock_policy=UPGRADE_LOCKS):
        super().__init__()
        if victim_policy not in _VICTIM_POLICIES:
            raise ValueError(
                f"victim_policy must be one of {_VICTIM_POLICIES}, "
                f"got {victim_policy!r}"
            )
        if write_lock_policy not in _WRITE_LOCK_POLICIES:
            raise ValueError(
                f"write_lock_policy must be one of "
                f"{_WRITE_LOCK_POLICIES}, got {write_lock_policy!r}"
            )
        self.write_lock_policy = write_lock_policy
        if detection_mode not in _DETECTION_MODES:
            raise ValueError(
                f"detection_mode must be one of {_DETECTION_MODES}, "
                f"got {detection_mode!r}"
            )
        if detection_interval <= 0.0:
            raise ValueError(
                f"detection_interval must be > 0, got {detection_interval}"
            )
        self.victim_policy = victim_policy
        self.detection_mode = detection_mode
        self.detection_interval = detection_interval
        self.locks = None
        self.deadlocks_found = 0

    def attach(self, env, hooks=None):
        super().attach(env, hooks)
        self.locks = LockManager(env)
        if self.detection_mode == DETECT_PERIODIC:
            env.process(self._periodic_detector())
        return self

    def _periodic_detector(self):
        """Scan the waits-for graph every ``detection_interval``.

        Victimizes until the graph is acyclic. Between scans,
        deadlocked transactions simply sit blocked — the cost of the
        cheaper detection policy.
        """
        while True:
            yield self.env.timeout(self.detection_interval)
            while True:
                graph = build_waits_for(self.locks)
                cycle = find_any_cycle(graph)
                if cycle is None:
                    break
                self.deadlocks_found += 1
                victim = self._choose_victim(cycle[0], cycle)
                self._victimize(
                    victim,
                    RestartTransaction(
                        REASON_DEADLOCK,
                        f"periodic scan broke a cycle of {len(cycle)}",
                    ),
                )

    # -- lock requests -----------------------------------------------------

    def read_request(self, tx, obj):
        if (self.write_lock_policy == IMMEDIATE_EXCLUSIVE
                and obj in cc_units_written(tx)):
            return self._locked_request(tx, obj, LockMode.EXCLUSIVE)
        return self._locked_request(tx, obj, LockMode.SHARED)

    def write_request(self, tx, obj):
        return self._locked_request(tx, obj, LockMode.EXCLUSIVE)

    def _locked_request(self, tx, obj, mode):
        result = self.locks.acquire(tx, obj, mode, wait=True)
        if result.granted:
            return None
        self.hooks.count_block(tx)
        if self.detection_mode == DETECT_ON_BLOCK:
            self._resolve_deadlocks(tx)
        # If the requester itself was victimized, _resolve_deadlocks raised
        # and we never get here. Otherwise wait for the grant; the event
        # fails with RestartTransaction if a later detection victimizes us.
        tx.lock_wait_event = result.event
        return result.event

    # -- deadlock handling ---------------------------------------------------

    def _resolve_deadlocks(self, requester):
        """Break every cycle through ``requester``, youngest victim first."""
        while True:
            graph = build_waits_for(self.locks)
            cycle = find_cycle_containing(graph, requester)
            if cycle is None:
                return
            self.deadlocks_found += 1
            victim = self._choose_victim(requester, cycle)
            error = RestartTransaction(
                REASON_DEADLOCK,
                f"victim of cycle of {len(cycle)} transactions",
            )
            if victim is requester:
                # Abort ourselves synchronously; engine cleanup (abort())
                # removes our queued request and releases our locks.
                raise error
            self._victimize(victim, error)

    def _choose_victim(self, requester, cycle):
        if self.victim_policy == VICTIM_YOUNGEST:
            return youngest(cycle)
        if self.victim_policy == VICTIM_OLDEST:
            return min(
                cycle, key=lambda tx: (tx.first_submit_time, tx.id)
            )
        return requester

    def _victimize(self, victim, error):
        """Deliver a restart to a blocked victim.

        Every member of a waits-for cycle is blocked on a lock event, so
        failing that event resumes the victim's process with the error.
        Its engine-side handler then calls :meth:`abort`, which releases
        the victim's locks and unblocks the rest of the cycle.
        """
        event = getattr(victim, "lock_wait_event", None)
        if event is None or event.triggered:
            raise AssertionError(
                f"deadlock victim {victim!r} is not blocked on a lock"
            )
        event.fail(error)
        # Remove the victim's queued request right away so that waits-for
        # graphs built before its abort runs do not still see it.
        self.locks.release_all(victim)

    # -- completion ----------------------------------------------------------

    def finalize_commit(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)

    def abort(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)
