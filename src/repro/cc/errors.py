"""Exceptions used by the concurrency-control layer."""


class ConcurrencyControlError(Exception):
    """Base class for protocol-level errors (bugs, not conflicts)."""


class RestartTransaction(Exception):
    """A transaction attempt must be aborted and retried from the start.

    Raised synchronously into the requester (lock denial under
    immediate-restart, failed validation, timestamp rejection, requester
    chosen as deadlock victim) or delivered asynchronously by failing the
    victim's lock-wait event / interrupting its process (deadlock victim,
    wound-wait wound).

    ``reason`` is one of the ``REASON_*`` constants below; the engine uses
    it for metrics and the restart-delay policy.
    """

    def __init__(self, reason, detail=""):
        super().__init__(reason, detail)
        self.reason = reason
        self.detail = detail

    def __str__(self):
        if self.detail:
            return f"{self.reason}: {self.detail}"
        return self.reason


# Restart reasons (stable strings; they appear in metrics breakdowns).
REASON_DEADLOCK = "deadlock"
REASON_LOCK_CONFLICT = "lock_conflict"
REASON_VALIDATION = "validation_failure"
REASON_TIMESTAMP = "timestamp_order"
REASON_WOUND = "wounded"
# Raised by the fault injector (repro.faults), not by any CC algorithm:
# a transient object-access fault forced the restart.
REASON_ACCESS_FAULT = "access_fault"
