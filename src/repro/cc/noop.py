"""A no-op "algorithm" that grants everything and never restarts.

Not a correct concurrency control — committed histories may be
non-serializable. It exists as the contention-free baseline: running the
model with it measures pure resource behavior (queueing, utilization,
throughput ceilings) with zero data contention, which is how we validate
the physical model against closed-form queueing expectations.
"""

from repro.cc.base import DELAY_NONE, INSTALL_AT_FINALIZE, ConcurrencyControl


class NoOpCC(ConcurrencyControl):
    """Grants every request immediately; for calibration only."""

    name = "noop"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_FINALIZE
