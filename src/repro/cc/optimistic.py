"""The paper's Optimistic algorithm (Kung–Robinson commit-time validation).

Transactions execute unhindered — the first concurrency-control request
is a no-op and object accesses proceed with no intervening CC requests.
At its commit point a transaction validates: it is restarted if any
object it read was written by another transaction that committed during
its (current attempt's) lifetime. No restart delay is needed — a
detected conflict is with an already *committed* transaction, so the same
conflict cannot recur.

Validation is modeled as atomic at the commit point (the cc queue visit
after the last object access): a successful validator stamps its write
set with the current time before its deferred updates are performed, so
transactions validating during the update phase still see the conflict.
This mirrors Kung–Robinson's serial-validation critical section.
"""

from repro.cc.base import (
    DELAY_NONE,
    INSTALL_AT_PRE_COMMIT,
    ConcurrencyControl,
    cc_units_read,
    cc_units_written,
)
from repro.cc.errors import REASON_VALIDATION, RestartTransaction


class OptimisticCC(ConcurrencyControl):
    """Commit-time backward validation against committed write stamps."""

    name = "optimistic"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_PRE_COMMIT

    def __init__(self):
        super().__init__()
        # obj -> simulated time of the last committed write. Missing keys
        # mean "never written", i.e. -infinity.
        self._write_stamp = {}
        self.validations = 0
        self.validation_failures = 0

    # Reads and writes run unhindered: both requests are no-ops.

    def pre_commit(self, tx):
        """Backward validation at the commit point.

        Fails if any object in the read set carries a committed-write
        stamp later than this attempt's start (i.e. some transaction
        committed a write to it during our lifetime).
        """
        self.validations += 1
        stamps = self._write_stamp
        start = tx.attempt_start_time
        for unit in cc_units_read(tx):
            if stamps.get(unit, -1.0) > start:
                self.validation_failures += 1
                raise RestartTransaction(
                    REASON_VALIDATION,
                    f"unit {unit} written after attempt start {start:.6g}",
                )
        # Validated: this is the commit point. Stamp the write set now so
        # that concurrent validators observe the conflict even while our
        # deferred updates are still being written to disk.
        now = self.env.now
        for unit in cc_units_written(tx):
            stamps[unit] = now
        return None

    def abort(self, tx):
        """Nothing to clean up: optimistic keeps no per-transaction state."""
