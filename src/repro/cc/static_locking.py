"""Static (predeclared) two-phase locking.

The Blocking algorithm of the paper is *dynamic* 2PL: locks are
requested as objects are accessed, which is what makes deadlock
possible. The classic alternative — used by the ancestral models of
[Ries77, Ries79] and compared against dynamic locking in the TODS 1987
expansion of this paper — is **static locking**: a transaction declares
its whole read and write set up front and acquires every lock *before
its first access*.

We acquire the predeclared locks one at a time in global object order,
blocking as needed. Ordered acquisition makes deadlock impossible (all
waits-for edges point from lower- to higher-ordered lock positions), so
no detector is required. Write-set objects are locked exclusively from
the start (no upgrades — upgrade deadlocks cannot exist either).

The price of this safety is concurrency: locks are held from before the
first read instead of from first use, so static locking blocks more
than dynamic locking at the same contention level.
"""

from repro.cc.base import (
    DELAY_NONE,
    INSTALL_AT_FINALIZE,
    ConcurrencyControl,
    cc_units_read,
    cc_units_written,
)
from repro.cc.locks import LockManager, LockMode


class StaticLockingCC(ConcurrencyControl):
    """Predeclaration locking: all locks acquired before any access."""

    name = "static_locking"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        super().__init__()
        self.locks = None

    def attach(self, env, hooks=None):
        super().attach(env, hooks)
        self.locks = LockManager(env)
        return self

    def begin(self, tx):
        """Build the ordered lock plan for this attempt."""
        written = set(cc_units_written(tx))
        tx.static_lock_plan = [
            (unit, LockMode.EXCLUSIVE if unit in written
             else LockMode.SHARED)
            for unit in sorted(set(cc_units_read(tx)))
        ]
        tx.static_lock_index = 0

    def read_request(self, tx, obj):
        """First request drives the whole predeclared acquisition.

        The engine re-issues the request after each wait, so this
        method simply advances through the plan, returning the wait
        event of the first unavailable lock each time, until the plan
        is complete. Requests for later objects find the plan finished
        and return immediately.
        """
        plan = tx.static_lock_plan
        while tx.static_lock_index < len(plan):
            planned_obj, mode = plan[tx.static_lock_index]
            result = self.locks.acquire(tx, planned_obj, mode, wait=True)
            if not result.granted:
                self.hooks.count_block(tx)
                tx.lock_wait_event = result.event
                return result.event
            tx.static_lock_index += 1
        return None

    def write_request(self, tx, obj):
        """Writes were locked exclusively up front; nothing to do."""
        return None

    def finalize_commit(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)

    def abort(self, tx):
        """Only reachable through external aborts (e.g. delay modes);
        static locking itself never restarts anyone."""
        tx.lock_wait_event = None
        self.locks.release_all(tx)
