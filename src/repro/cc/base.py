"""The interface every concurrency-control algorithm implements.

The engine (``repro.core.engine``) drives an algorithm through this
protocol. All methods are synchronous; a method that cannot complete the
request immediately returns a *wait event* that the transaction's process
must yield on. Conflict decisions surface as
:class:`~repro.cc.errors.RestartTransaction`, either raised directly into
the requester or delivered by failing a victim's wait event / interrupting
its process via the engine hooks.

Sequence per transaction attempt::

    begin(tx)
    for obj in tx.read_set:   read_request(tx, obj)   # may return event
    for obj in tx.write_set:  write_request(tx, obj)  # may return event
    pre_commit(tx)       # commit-point validation; may raise / return event
    ... deferred updates performed by the engine ...
    finalize_commit(tx)  # release locks etc.

    abort(tx)  # instead, whenever RestartTransaction reached the engine
"""

# Restart-delay policies an algorithm may declare as its default.
DELAY_NONE = "none"
DELAY_ADAPTIVE = "adaptive"

# When the engine should install a committing transaction's writes into
# the (logical) object store: at the commit point established by
# pre_commit, or when the transaction finally completes.
INSTALL_AT_PRE_COMMIT = "pre_commit"
INSTALL_AT_FINALIZE = "finalize"


def cc_units_read(tx):
    """The CC units (granules or objects) a transaction reads.

    Falls back to the raw read set for plain test doubles; the engine
    always populates ``cc_read_set``.
    """
    units = getattr(tx, "cc_read_set", None)
    return units if units else tx.read_set


def cc_units_written(tx):
    """The CC units a transaction writes (see :func:`cc_units_read`)."""
    units = getattr(tx, "cc_write_set", None)
    return units if units else tx.write_set


class EngineHooks:
    """Callbacks an algorithm uses to talk back to the engine.

    The engine passes a concrete implementation to :meth:`attach`. A
    null implementation makes algorithms unit-testable standalone.
    """

    def count_block(self, tx):
        """A concurrency-control request just blocked ``tx``."""

    def abort_remote(self, tx, error):
        """Abort ``tx``, which is NOT currently waiting on a CC event.

        Used by algorithms that abort running transactions (wound-wait).
        ``error`` is the RestartTransaction to deliver.
        """
        raise NotImplementedError(
            "this engine cannot abort running transactions"
        )


class ConcurrencyControl:
    """Abstract base for concurrency-control algorithms."""

    #: Registry name, e.g. ``"blocking"``.
    name = None
    #: Default restart-delay policy (the paper's per-algorithm choice).
    default_restart_delay = DELAY_NONE
    #: When the engine installs writes into the logical object store.
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        self.env = None
        self.hooks = EngineHooks()

    def attach(self, env, hooks=None):
        """Bind the algorithm to a simulation environment."""
        self.env = env
        if hooks is not None:
            self.hooks = hooks
        return self

    # -- protocol ---------------------------------------------------------

    def begin(self, tx):
        """A new attempt of ``tx`` starts executing."""

    def read_request(self, tx, obj):
        """CC request preceding a read of ``obj``.

        Returns None (proceed) or an event to wait on. Raises
        RestartTransaction to abort the requester.
        """
        return None

    def write_request(self, tx, obj):
        """CC request preceding a write of ``obj`` (read locks upgrade)."""
        return None

    def pre_commit(self, tx):
        """Commit-point processing (e.g. optimistic validation).

        Returns None or an event; raises RestartTransaction on failure.
        After this returns/fires, the transaction is logically committed.
        """
        return None

    def finalize_commit(self, tx):
        """Called after deferred updates complete; release CC state."""

    def abort(self, tx):
        """Clean up CC state for an aborted attempt of ``tx``."""

    # -- serialization-order hooks (used by the engine's object store) -----

    def serial_key(self, tx):
        """Equivalent-serial-order key of a committing transaction.

        None means "assign a fresh commit-order key" (correct for strict
        2PL variants and optimistic validation order). Timestamp-ordering
        algorithms return the transaction's timestamp instead.
        """
        return None

    def reader_version_key(self, tx):
        """Version-selection key for reads (None = read latest installed).

        Only multiversion algorithms override this.
        """
        return None

    # -- introspection ------------------------------------------------------

    def describe(self):
        """One-line human description (used in reports)."""
        return type(self).__doc__.strip().splitlines()[0]
