"""The interface every concurrency-control algorithm implements.

The engine (``repro.core.engine``) drives an algorithm through this
protocol. All methods are synchronous; a method that cannot complete the
request immediately returns a *wait event* that the transaction's process
must yield on. Conflict decisions surface as
:class:`~repro.cc.errors.RestartTransaction`, either raised directly into
the requester or delivered by failing a victim's wait event / interrupting
its process via the engine hooks.

Sequence per transaction attempt::

    begin(tx)
    for obj in tx.read_set:   read_request(tx, obj)   # may return event
    for obj in tx.write_set:  write_request(tx, obj)  # may return event
    pre_commit(tx)       # commit-point validation; may raise / return event
    ... deferred updates performed by the engine ...
    finalize_commit(tx)  # release locks etc.

    abort(tx)  # instead, whenever RestartTransaction reached the engine
"""

# Restart-delay policies an algorithm may declare as its default.
DELAY_NONE = "none"
DELAY_ADAPTIVE = "adaptive"

# When the engine should install a committing transaction's writes into
# the (logical) object store: at the commit point established by
# pre_commit, or when the transaction finally completes.
INSTALL_AT_PRE_COMMIT = "pre_commit"
INSTALL_AT_FINALIZE = "finalize"


def cc_units_read(tx):
    """The CC units (granules or objects) a transaction reads.

    Falls back to the raw read set for plain test doubles; the engine
    always populates ``cc_read_set``.
    """
    units = getattr(tx, "cc_read_set", None)
    return units if units else tx.read_set


def cc_units_written(tx):
    """The CC units a transaction writes (see :func:`cc_units_read`)."""
    units = getattr(tx, "cc_write_set", None)
    return units if units else tx.write_set


class EngineHooks:
    """Callbacks an algorithm uses to talk back to the engine.

    The engine passes a concrete implementation to :meth:`attach`. A
    null implementation makes algorithms unit-testable standalone.
    """

    def count_block(self, tx):
        """A concurrency-control request just blocked ``tx``."""

    def abort_remote(self, tx, error):
        """Abort ``tx``, which is NOT currently waiting on a CC event.

        Used by algorithms that abort running transactions (wound-wait).
        ``error`` is the RestartTransaction to deliver.
        """
        raise NotImplementedError(
            "this engine cannot abort running transactions"
        )


class ConcurrencyControl:
    """Abstract base for concurrency-control algorithms."""

    #: Registry name, e.g. ``"blocking"``.
    name = None
    #: Default restart-delay policy (the paper's per-algorithm choice).
    default_restart_delay = DELAY_NONE
    #: When the engine installs writes into the logical object store.
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        self.env = None
        self.hooks = EngineHooks()

    def attach(self, env, hooks=None):
        """Bind the algorithm to a simulation environment."""
        self.env = env
        if hooks is not None:
            self.hooks = hooks
        return self

    # -- protocol ---------------------------------------------------------

    def begin(self, tx):
        """A new attempt of ``tx`` starts executing."""

    def read_request(self, tx, obj):
        """CC request preceding a read of ``obj``.

        Returns None (proceed) or an event to wait on. Raises
        RestartTransaction to abort the requester.
        """
        return None

    def write_request(self, tx, obj):
        """CC request preceding a write of ``obj`` (read locks upgrade)."""
        return None

    def pre_commit(self, tx):
        """Commit-point processing (e.g. optimistic validation).

        Returns None or an event; raises RestartTransaction on failure.
        After this returns/fires, the transaction is logically committed.
        """
        return None

    def finalize_commit(self, tx):
        """Called after deferred updates complete; release CC state."""

    def abort(self, tx):
        """Clean up CC state for an aborted attempt of ``tx``."""

    # -- serialization-order hooks (used by the engine's object store) -----

    def serial_key(self, tx):
        """Equivalent-serial-order key of a committing transaction.

        None means "assign a fresh commit-order key" (correct for strict
        2PL variants and optimistic validation order). Timestamp-ordering
        algorithms return the transaction's timestamp instead.
        """
        return None

    def reader_version_key(self, tx):
        """Version-selection key for reads (None = read latest installed).

        Only multiversion algorithms override this.
        """
        return None

    # -- introspection ------------------------------------------------------

    def describe(self):
        """One-line human description (used in reports)."""
        return type(self).__doc__.strip().splitlines()[0]


class CommitProtocol:
    """The commit-point seam: what happens *around* ``cc.pre_commit``.

    The engine historically treated commit as a single atomic point.
    This seam splits it into the classic two-phase-commit shape without
    changing any algorithm: a *prepare window* runs just before the
    algorithm's own ``pre_commit`` (vote collection — for 2PL the locks
    are naturally still held, for optimistic the validation that
    follows *is* the local vote), and a *decision stage* runs after the
    writes install (distributing the outcome), still before
    ``finalize_commit`` releases CC state. A protocol composes with
    every registered algorithm because it only brackets the existing
    commit path; it never touches the algorithm's conflict logic.

    ``prepare``/``decide`` are generators driven with ``yield from``
    inside the transaction process, so protocols charge real service
    (network legs) through the attached model's physical tier. The
    engine consults :attr:`is_null` once per model and skips both
    generators entirely for null protocols — the paper's single-site
    commit path stays bit-identical to pre-seam builds.
    """

    #: Registry name, e.g. ``"2pc"``.
    name = None
    #: True when the protocol adds nothing to the commit path; the
    #: engine then never builds the prepare/decide generators at all.
    is_null = True

    def __init__(self):
        self.model = None

    def attach(self, model):
        """Bind the protocol to its :class:`~repro.core.engine.SystemModel`."""
        self.model = model
        return self

    def prepare(self, tx):
        """Vote-collection stage, run immediately before ``pre_commit``.

        A generator: yield service events (network legs) as needed.
        Raising :class:`~repro.cc.errors.RestartTransaction` here aborts
        the attempt exactly like a CC conflict would.
        """
        return
        yield  # pragma: no cover - generator shape

    def decide(self, tx):
        """Decision-distribution stage, run after the writes install."""
        return
        yield  # pragma: no cover - generator shape

    def abort(self, tx):
        """Discard protocol state for an aborted attempt of ``tx``."""

    def describe(self):
        """One-line human description (used in reports)."""
        return type(self).__doc__.strip().splitlines()[0]


class SingleSiteCommit(CommitProtocol):
    """The paper's atomic commit point: no distributed handshake."""

    name = "single_site"
    is_null = True
