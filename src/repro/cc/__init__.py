"""Concurrency-control algorithms and their supporting machinery.

The paper's three strategies — :class:`BlockingCC` (dynamic 2PL),
:class:`ImmediateRestartCC`, and :class:`OptimisticCC` — represent the
extremes of when conflicts are detected (as they occur vs. at commit)
and how they are resolved (blocking vs. restarts). Extensions (basic and
multiversion timestamp ordering, wound-wait, wait-die) plug into the same
:class:`ConcurrencyControl` interface.
"""

from repro.cc.base import (
    DELAY_ADAPTIVE,
    DELAY_NONE,
    INSTALL_AT_FINALIZE,
    INSTALL_AT_PRE_COMMIT,
    CommitProtocol,
    ConcurrencyControl,
    EngineHooks,
    SingleSiteCommit,
    cc_units_read,
    cc_units_written,
)
from repro.cc.blocking import BlockingCC
from repro.cc.errors import (
    REASON_ACCESS_FAULT,
    REASON_DEADLOCK,
    REASON_LOCK_CONFLICT,
    REASON_TIMESTAMP,
    REASON_VALIDATION,
    REASON_WOUND,
    ConcurrencyControlError,
    RestartTransaction,
)
from repro.cc.immediate_restart import ImmediateRestartCC
from repro.cc.locks import AcquireResult, LockManager, LockMode, compatible
from repro.cc.multiversion import MultiversionTimestampOrderingCC
from repro.cc.noop import NoOpCC
from repro.cc.optimistic import OptimisticCC
from repro.cc.registry import (
    PAPER_ALGORITHMS,
    algorithm_names,
    commit_protocol_names,
    create_algorithm,
    create_commit_protocol,
    register_algorithm,
    register_commit_protocol,
)
from repro.cc.static_locking import StaticLockingCC
from repro.cc.timestamp import MIN_TS, BasicTimestampOrderingCC
from repro.cc.two_phase_commit import TwoPhaseCommit
from repro.cc.wait_die import WaitDieCC
from repro.cc.waits_for import (
    build_waits_for,
    find_any_cycle,
    find_cycle_containing,
    youngest,
)
from repro.cc.wound_wait import WoundWaitCC

__all__ = [
    "ConcurrencyControl",
    "EngineHooks",
    "BlockingCC",
    "ImmediateRestartCC",
    "OptimisticCC",
    "BasicTimestampOrderingCC",
    "MultiversionTimestampOrderingCC",
    "WoundWaitCC",
    "WaitDieCC",
    "StaticLockingCC",
    "NoOpCC",
    "LockManager",
    "LockMode",
    "AcquireResult",
    "compatible",
    "RestartTransaction",
    "ConcurrencyControlError",
    "REASON_DEADLOCK",
    "REASON_LOCK_CONFLICT",
    "REASON_VALIDATION",
    "REASON_TIMESTAMP",
    "REASON_WOUND",
    "REASON_ACCESS_FAULT",
    "DELAY_NONE",
    "DELAY_ADAPTIVE",
    "INSTALL_AT_PRE_COMMIT",
    "INSTALL_AT_FINALIZE",
    "MIN_TS",
    "CommitProtocol",
    "SingleSiteCommit",
    "TwoPhaseCommit",
    "PAPER_ALGORITHMS",
    "algorithm_names",
    "create_algorithm",
    "register_algorithm",
    "commit_protocol_names",
    "create_commit_protocol",
    "register_commit_protocol",
    "build_waits_for",
    "find_cycle_containing",
    "find_any_cycle",
    "youngest",
    "cc_units_read",
    "cc_units_written",
]
