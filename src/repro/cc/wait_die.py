"""Wait-Die: timestamp-priority 2PL with deadlock prevention.

On a lock conflict the requester compares its priority timestamp (kept
from its first attempt) with the conflicting transactions:

* if the requester is *older* than every conflicting transaction, it
  waits (edges old->young only, so no deadlock is possible);
* otherwise it **dies**: it is restarted, keeping its original
  timestamp so it eventually becomes the oldest and runs to completion
  (no starvation).

Like wound-wait, this interpolates between the paper's blocking and
immediate-restart extremes, but resolves conflicts by aborting the
*requester* (as immediate-restart does) rather than the holder. For the
same reason the paper gives for immediate-restart, a dying transaction
must be delayed before retrying: it keeps its timestamp, so the
conflicting older transaction is still there on an instantaneous retry
and "the same lock conflict will occur repeatedly" — in a simulator with
instantaneous rollback this is a genuine zero-time livelock. The
default policy is therefore the paper's adaptive delay (exponential,
mean = running-average response time).
"""

from repro.cc.base import (
    DELAY_ADAPTIVE,
    INSTALL_AT_FINALIZE,
    ConcurrencyControl,
)
from repro.cc.errors import REASON_LOCK_CONFLICT, RestartTransaction
from repro.cc.locks import LockManager, LockMode


class WaitDieCC(ConcurrencyControl):
    """2PL where younger requesters die instead of waiting."""

    name = "wait_die"
    default_restart_delay = DELAY_ADAPTIVE
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        super().__init__()
        self.locks = None
        self.deaths = 0

    def attach(self, env, hooks=None):
        super().attach(env, hooks)
        self.locks = LockManager(env)
        return self

    def read_request(self, tx, obj):
        return self._request(tx, obj, LockMode.SHARED)

    def write_request(self, tx, obj):
        return self._request(tx, obj, LockMode.EXCLUSIVE)

    def _request(self, tx, obj, mode):
        conflicts = self.locks.would_conflict_with(tx, obj, mode)
        if any(other.priority_ts < tx.priority_ts for other in conflicts):
            # Younger than some conflicting transaction: die.
            self.deaths += 1
            raise RestartTransaction(
                REASON_LOCK_CONFLICT,
                f"younger requester dies on object {obj}",
            )
        result = self.locks.acquire(tx, obj, mode, wait=True)
        if result.granted:
            return None
        self.hooks.count_block(tx)
        tx.lock_wait_event = result.event
        return result.event

    def finalize_commit(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)

    def abort(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)
