"""Two-phase commit as a composable commit-protocol wrapper.

Wraps any registered concurrency-control algorithm's commit point in
the classic presumed-nothing 2PC handshake, charged through the
physical tier's network legs:

* **Prepare phase** (before the algorithm's ``pre_commit``): the
  coordinator — the transaction's home node — sends one prepare
  message to every remote participant and waits for its vote, one
  round trip per participant (``2pc_prepare``/``2pc_vote`` bus
  events bracket each). For blocking-style algorithms the
  transaction's locks are naturally held across this window (they are
  released in ``finalize_commit``, which runs after the decision
  stage); for optimistic the local validation that follows the window
  is the coordinator's own vote.
* **Decision phase** (after the writes install, before
  ``finalize_commit``): one ``2pc_decide`` event records the commit
  decision with its vote quorum, then one decision message ships to
  each participant. Decision acknowledgements are not charged — the
  outcome is durable at the coordinator, so the transaction need not
  wait on them (presumed commit for the happy path).

Three messages per remote participant per commit, the textbook 2PC
cost. A participant set of zero (a one-node topology, or a single-site
resource model — the base model's ``participant_nodes`` returns
nothing) degenerates to the paper's atomic commit point: no legs, no
prepare/vote events, only the zero-quorum decision record.

An abort during the prepare window (e.g. optimistic validation
failure) discards the prepare state; the invariant checker treats the
``restart`` lifecycle event as resolving the outstanding prepares
(abort-decision messages are not charged: the attempt is already
unwinding and re-runs from scratch).
"""

from repro.cc.base import CommitProtocol

__all__ = ["TwoPhaseCommit"]


class TwoPhaseCommit(CommitProtocol):
    """Prepare/vote round trips per participant, then decision legs."""

    name = "2pc"
    is_null = False

    def __init__(self):
        super().__init__()
        #: tx id -> tuple of participant nodes that voted, kept from
        #: the prepare window until the decision stage consumes it.
        self._prepared = {}

    def attach(self, model):
        # Deferred import: repro.cc must stay importable without
        # touching repro.obs (whose package init reaches back through
        # repro.core.engine into repro.cc). By attach time the import
        # graph is settled.
        from repro.obs.events import (
            TWO_PC_DECIDE,
            TWO_PC_PREPARE,
            TWO_PC_VOTE,
        )

        self._kind_prepare = TWO_PC_PREPARE
        self._kind_vote = TWO_PC_VOTE
        self._kind_decide = TWO_PC_DECIDE
        return super().attach(model)

    def participants(self, tx):
        """Remote nodes involved in ``tx`` (the physical tier knows)."""
        return tuple(self.model.physical.participant_nodes(tx))

    def prepare(self, tx):
        model = self.model
        physical = model.physical
        participants = self.participants(tx)
        self._prepared[tx.id] = participants
        if not participants:
            return
        bus = model.bus
        home = physical.home_node(tx)
        for node in participants:
            bus.emit(self._kind_prepare, tx=tx, node=node)
            # One round trip per participant: the prepare message out,
            # the participant's vote back. Sequential — the modeled
            # coordinator processes one participant channel at a time.
            yield from physical.network_leg(tx, home, node)
            yield from physical.network_leg(tx, node, home)
            bus.emit(self._kind_vote, tx=tx, node=node, vote="yes")

    def decide(self, tx):
        model = self.model
        participants = self._prepared.pop(tx.id, ())
        model.bus.emit(
            self._kind_decide, tx=tx, decision="commit",
            quorum=len(participants),
        )
        physical = model.physical
        home = physical.home_node(tx)
        for node in participants:
            yield from physical.network_leg(tx, home, node)

    def abort(self, tx):
        self._prepared.pop(tx.id, None)
