"""Waits-for graph construction and cycle detection for deadlock handling.

The paper maintains a waits-for graph of transactions [Gray79] and runs
deadlock detection *each time a transaction blocks*. We rebuild the graph
from the live lock-table state at each detection — with mpl <= a few
hundred transactions the graph is tiny, and deriving it from one source of
truth eliminates incremental-maintenance bugs.
"""


def build_waits_for(lock_manager):
    """Adjacency mapping tx -> set of transactions it waits for."""
    graph = {}
    for request in lock_manager.all_blocked_requests():
        blockers = lock_manager.blockers(request)
        if not blockers:
            continue
        graph.setdefault(request.tx, set()).update(blockers)
    return graph


def _by_id(tx):
    return tx.id


def _successors(graph, node):
    """Successors of ``node`` in ascending transaction-id order.

    The adjacency values are sets of transactions, whose iteration
    order depends on identity hashes — i.e. on memory layout, which
    varies across processes. The DFS must visit successors in a stable
    order or the cycle it finds (and hence the deadlock victim chosen
    from it) would differ from run to run whenever the graph holds
    more than one cycle through the requester.
    """
    return iter(sorted(graph.get(node, ()), key=_by_id))


def find_cycle_containing(graph, start):
    """A cycle through ``start`` as a list of transactions, or None.

    Iterative DFS over the waits-for edges; returns the cycle path
    ``[start, t1, ..., tk]`` such that ``tk`` waits for ``start``.
    The DFS visits successors in transaction-id order, so the returned
    cycle is a deterministic function of the graph alone.
    """
    if start not in graph:
        return None
    path = [start]
    on_path = {start}
    iterators = [_successors(graph, start)]
    visited = set()
    while iterators:
        found_next = False
        for successor in iterators[-1]:
            if successor is start and len(path) >= 1:
                return list(path)
            if successor in on_path or successor in visited:
                continue
            if successor in graph:
                path.append(successor)
                on_path.add(successor)
                iterators.append(_successors(graph, successor))
                found_next = True
                break
            # A node with no outgoing edges cannot be on a cycle.
            visited.add(successor)
        if not found_next:
            node = path.pop()
            on_path.discard(node)
            visited.add(node)
            iterators.pop()
    return None


def find_any_cycle(graph):
    """Any cycle in the graph (list of transactions), or None.

    Used by tests and by safety assertions; victim selection in the
    algorithms always goes through :func:`find_cycle_containing` because
    detection runs when a specific transaction blocks.
    """
    for node in graph:
        cycle = find_cycle_containing(graph, node)
        if cycle is not None:
            return cycle
    return None


def youngest(transactions):
    """The youngest transaction: the one that first arrived most recently.

    The paper restarts "the youngest transaction in the deadlock cycle".
    Age is the transaction's *first* submission time (kept across
    restarts), so a repeatedly restarted transaction grows relatively
    older and is eventually spared — this avoids starvation. Ties break
    on transaction id (higher id = younger).
    """
    return max(transactions, key=lambda tx: (tx.first_submit_time, tx.id))
