"""Name -> algorithm registry (and the commit-protocol registry).

The three paper algorithms are ``blocking``, ``immediate_restart`` and
``optimistic``; the rest are extensions (see DESIGN.md section 6).
Commit protocols — the seam around the commit point — register here
too, mirroring the algorithm registry: ``single_site`` (the paper's
atomic commit point) and ``2pc`` (two-phase commit).
"""

from repro.cc.base import SingleSiteCommit
from repro.cc.blocking import BlockingCC
from repro.cc.immediate_restart import ImmediateRestartCC
from repro.cc.multiversion import MultiversionTimestampOrderingCC
from repro.cc.noop import NoOpCC
from repro.cc.optimistic import OptimisticCC
from repro.cc.static_locking import StaticLockingCC
from repro.cc.timestamp import BasicTimestampOrderingCC
from repro.cc.two_phase_commit import TwoPhaseCommit
from repro.cc.wait_die import WaitDieCC
from repro.cc.wound_wait import WoundWaitCC

_ALGORITHMS = {
    cls.name: cls
    for cls in (
        BlockingCC,
        ImmediateRestartCC,
        OptimisticCC,
        BasicTimestampOrderingCC,
        MultiversionTimestampOrderingCC,
        WoundWaitCC,
        WaitDieCC,
        StaticLockingCC,
        NoOpCC,
    )
}

#: The algorithms studied by the paper, in its presentation order.
PAPER_ALGORITHMS = ("blocking", "immediate_restart", "optimistic")


def algorithm_names():
    """All registered algorithm names, sorted."""
    return sorted(_ALGORITHMS)


def create_algorithm(name, **kwargs):
    """Instantiate a registered algorithm by name.

    Extra keyword arguments are forwarded to the algorithm constructor
    (e.g. ``thomas_write_rule=True`` for ``basic_to``).
    """
    try:
        cls = _ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown concurrency control algorithm {name!r}; "
            f"choose from {algorithm_names()}"
        ) from None
    return cls(**kwargs)


def register_algorithm(cls):
    """Register a user-supplied ConcurrencyControl subclass by its name.

    The simulation framework "is intended to support any concurrency
    control algorithm" (paper, section 3); this is the extension point.
    """
    if not getattr(cls, "name", None):
        raise ValueError("algorithm class must define a non-empty name")
    _ALGORITHMS[cls.name] = cls
    return cls


# -- commit protocols ---------------------------------------------------------

_COMMIT_PROTOCOLS = {
    cls.name: cls for cls in (SingleSiteCommit, TwoPhaseCommit)
}


def commit_protocol_names():
    """All registered commit-protocol names, sorted."""
    return sorted(_COMMIT_PROTOCOLS)


def create_commit_protocol(name):
    """Instantiate the commit protocol registered under ``name``."""
    try:
        cls = _COMMIT_PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown commit protocol {name!r}; "
            f"choose from {commit_protocol_names()}"
        ) from None
    return cls()


def register_commit_protocol(cls):
    """Register a :class:`~repro.cc.base.CommitProtocol` subclass."""
    if not getattr(cls, "name", None):
        raise ValueError(
            "commit protocol classes must define a non-empty 'name'"
        )
    _COMMIT_PROTOCOLS[cls.name] = cls
    return cls
