"""Name -> algorithm registry.

The three paper algorithms are ``blocking``, ``immediate_restart`` and
``optimistic``; the rest are extensions (see DESIGN.md section 6).
"""

from repro.cc.blocking import BlockingCC
from repro.cc.immediate_restart import ImmediateRestartCC
from repro.cc.multiversion import MultiversionTimestampOrderingCC
from repro.cc.noop import NoOpCC
from repro.cc.optimistic import OptimisticCC
from repro.cc.static_locking import StaticLockingCC
from repro.cc.timestamp import BasicTimestampOrderingCC
from repro.cc.wait_die import WaitDieCC
from repro.cc.wound_wait import WoundWaitCC

_ALGORITHMS = {
    cls.name: cls
    for cls in (
        BlockingCC,
        ImmediateRestartCC,
        OptimisticCC,
        BasicTimestampOrderingCC,
        MultiversionTimestampOrderingCC,
        WoundWaitCC,
        WaitDieCC,
        StaticLockingCC,
        NoOpCC,
    )
}

#: The algorithms studied by the paper, in its presentation order.
PAPER_ALGORITHMS = ("blocking", "immediate_restart", "optimistic")


def algorithm_names():
    """All registered algorithm names, sorted."""
    return sorted(_ALGORITHMS)


def create_algorithm(name, **kwargs):
    """Instantiate a registered algorithm by name.

    Extra keyword arguments are forwarded to the algorithm constructor
    (e.g. ``thomas_write_rule=True`` for ``basic_to``).
    """
    try:
        cls = _ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown concurrency control algorithm {name!r}; "
            f"choose from {algorithm_names()}"
        ) from None
    return cls(**kwargs)


def register_algorithm(cls):
    """Register a user-supplied ConcurrencyControl subclass by its name.

    The simulation framework "is intended to support any concurrency
    control algorithm" (paper, section 3); this is the extension point.
    """
    if not getattr(cls, "name", None):
        raise ValueError("algorithm class must define a non-empty name")
    _ALGORITHMS[cls.name] = cls
    return cls
