"""Wound-Wait: timestamp-priority 2PL with deadlock *prevention*.

On a lock conflict, the requester compares its priority timestamp (kept
from its first attempt, so transactions age) with each conflicting
transaction:

* conflicting transactions *younger* than the requester are **wounded**
  (restarted) — unless they are already past their commit point, in
  which case they are allowed to finish and the requester waits;
* the requester then waits for whatever remains (all older or
  committing), which keeps every waits-for edge young->old, so no cycle
  — and hence no deadlock detector — is ever needed.

An interpolation between the paper's blocking (waits, detector) and
immediate-restart (always aborts the requester) extremes.
"""

from repro.cc.base import (
    DELAY_NONE,
    INSTALL_AT_FINALIZE,
    ConcurrencyControl,
)
from repro.cc.errors import REASON_WOUND, RestartTransaction
from repro.cc.locks import LockManager, LockMode


class WoundWaitCC(ConcurrencyControl):
    """2PL where older transactions wound younger conflicting ones."""

    name = "wound_wait"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        super().__init__()
        self.locks = None
        self.wounds = 0

    def attach(self, env, hooks=None):
        super().attach(env, hooks)
        self.locks = LockManager(env)
        return self

    def read_request(self, tx, obj):
        return self._request(tx, obj, LockMode.SHARED)

    def write_request(self, tx, obj):
        return self._request(tx, obj, LockMode.EXCLUSIVE)

    def _request(self, tx, obj, mode):
        # Wounding a blocked victim releases its locks immediately, which
        # can grant a QUEUED request and create a brand-new conflicting
        # holder — so the conflict set must be recomputed after every
        # wound round until no unwounded younger conflicts remain.
        # (Victims wounded through the engine release asynchronously and
        # are excluded from re-checking via the ``wounded`` set.)
        wounded = set()
        while True:
            conflicts = self.locks.would_conflict_with(tx, obj, mode)
            targets = [
                other for other in conflicts
                if other.priority_ts > tx.priority_ts
                and not other.is_committing
                and other not in wounded
            ]
            if not targets:
                break
            # ``conflicts`` is a set of transactions; wound in id order,
            # not set-iteration order, so the sequence of restart events
            # (and everything scheduled after them) is reproducible
            # across processes.
            targets.sort(key=lambda other: other.id)
            for other in targets:
                wounded.add(other)
                self._wound(other)
        result = self.locks.acquire(tx, obj, mode, wait=True)
        if result.granted:
            return None
        self.hooks.count_block(tx)
        tx.lock_wait_event = result.event
        return result.event

    def _wound(self, victim):
        """Restart a younger conflicting transaction."""
        self.wounds += 1
        error = RestartTransaction(
            REASON_WOUND, "wounded by an older transaction"
        )
        event = getattr(victim, "lock_wait_event", None)
        if event is not None and not event.triggered:
            # Victim is blocked on a lock: fail its wait.
            event.fail(error)
            self.locks.release_all(victim)
        else:
            # Victim is running (using or queued for CPU/disk, or
            # thinking): the engine interrupts its process.
            self.hooks.abort_remote(victim, error)

    def finalize_commit(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)

    def abort(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)
