"""Multiversion Timestamp Ordering [Reed78], as compared in [Lin83].

Each committed write creates a new *version* stamped with the writer's
timestamp. Reads never block and never abort: a reader stamped R reads
the latest committed version with write stamp <= R and records R on that
version's read stamp. A writer stamped W is rejected iff installing its
version would invalidate an existing read — i.e. the version it would
supersede has been read by a transaction stamped later than W:

    v = latest version with v.wts < W
    reject if v.max_read_ts > W

The rule is checked early (at write-request time, to avoid wasting the
rest of the attempt) and re-checked at the commit point, when versions
are actually installed (deferred updates).
"""

from bisect import bisect_right, insort

from repro.cc.base import (
    DELAY_NONE,
    INSTALL_AT_PRE_COMMIT,
    ConcurrencyControl,
    cc_units_written,
)
from repro.cc.errors import REASON_TIMESTAMP, RestartTransaction
from repro.cc.timestamp import MIN_TS


class _Version:
    """One committed version: write stamp plus the largest read stamp."""

    __slots__ = ("wts", "max_read_ts", "writer_id")

    def __init__(self, wts, writer_id):
        self.wts = wts
        self.max_read_ts = MIN_TS
        self.writer_id = writer_id

    def __lt__(self, other):
        return self.wts < other.wts

    def __repr__(self):
        return f"<Version wts={self.wts} rts={self.max_read_ts}>"


class _VersionChain:
    """Committed versions of one object, ordered by write stamp."""

    __slots__ = ("versions",)

    def __init__(self):
        # A pre-existing "initial" version so every read finds something.
        self.versions = [_Version(MIN_TS, writer_id=None)]

    def version_for(self, ts):
        """Latest version with wts <= ts."""
        index = bisect_right(self.versions, ts, key=lambda v: v.wts)
        return self.versions[index - 1]

    def install(self, version):
        insort(self.versions, version)

    def prune(self, keep_after_ts, max_versions):
        """Drop versions no active reader can need (bounded memory)."""
        if len(self.versions) <= max_versions:
            return
        # Keep the latest version with wts <= keep_after_ts and everything
        # after it; older versions are unreachable.
        index = bisect_right(
            self.versions, keep_after_ts, key=lambda v: v.wts
        )
        first_needed = max(0, index - 1)
        if first_needed > 0:
            del self.versions[:first_needed]


class MultiversionTimestampOrderingCC(ConcurrencyControl):
    """MVTO: reads never block or abort; late writes are rejected."""

    name = "mvto"
    default_restart_delay = DELAY_NONE
    install_at = INSTALL_AT_PRE_COMMIT
    #: Version-chain length that triggers pruning of unreachable versions.
    max_versions = 32

    def __init__(self):
        super().__init__()
        self._chains = {}
        self._active_ts = set()
        self.rejections = 0

    def _chain(self, obj):
        chain = self._chains.get(obj)
        if chain is None:
            chain = self._chains[obj] = _VersionChain()
        return chain

    def begin(self, tx):
        self._active_ts.add(tx.cc_timestamp)
        tx.mv_reads_from = {}

    # -- reads ----------------------------------------------------------------

    def read_request(self, tx, obj):
        version = self._chain(obj).version_for(tx.cc_timestamp)
        if tx.cc_timestamp > version.max_read_ts:
            version.max_read_ts = tx.cc_timestamp
        tx.mv_reads_from[obj] = version.writer_id
        return None

    # -- writes ---------------------------------------------------------------

    def write_request(self, tx, obj):
        self._check_write(tx, obj)
        return None

    def _check_write(self, tx, obj):
        version = self._chain(obj).version_for(tx.cc_timestamp)
        if version.max_read_ts > tx.cc_timestamp:
            self.rejections += 1
            raise RestartTransaction(
                REASON_TIMESTAMP,
                f"version of {obj} already read by a younger transaction",
            )

    # -- commit/abort ------------------------------------------------------------

    def pre_commit(self, tx):
        """Re-check the write rule, then install all versions atomically."""
        for unit in cc_units_written(tx):
            self._check_write(tx, unit)
        oldest_active = min(self._active_ts) if self._active_ts else MIN_TS
        for unit in cc_units_written(tx):
            chain = self._chain(unit)
            chain.install(_Version(tx.cc_timestamp, writer_id=tx.id))
            chain.prune(oldest_active, self.max_versions)
        return None

    def finalize_commit(self, tx):
        self._active_ts.discard(tx.cc_timestamp)

    def abort(self, tx):
        self._active_ts.discard(tx.cc_timestamp)

    def serial_key(self, tx):
        """MVTO serializes committed transactions in timestamp order."""
        return tx.cc_timestamp

    def reader_version_key(self, tx):
        """Reads select the latest committed version stamped <= ts."""
        return tx.cc_timestamp

    # -- introspection ------------------------------------------------------------

    def reads_from(self, tx):
        """Mapping obj -> writer transaction id whose version tx read."""
        return dict(tx.mv_reads_from)
