"""A shared/exclusive lock manager with upgrades and FCFS queueing.

Semantics (classical System R-style, as assumed by the paper):

* Shared (read) locks are compatible with each other; exclusive (write)
  locks are compatible with nothing.
* Transactions read-lock objects they read and later *upgrade* to an
  exclusive lock for objects they also write.
* Grant order is FCFS, except that upgrade requests queue ahead of
  ordinary requests (they already hold the object in shared mode).
* A new request is granted only if it is compatible with all holders AND
  no request is already queued (no overtaking), except that an upgrade by
  the sole holder is granted immediately.

The lock manager is policy-free: it never decides to block or restart.
Algorithms call :meth:`acquire` with ``wait=True`` (blocking 2PL variants)
or ``wait=False`` (immediate-restart), inspect :meth:`blockers` to build
waits-for edges, and fail a victim's wait event to abort it remotely.
"""

from collections import deque
from enum import IntEnum


class LockMode(IntEnum):
    SHARED = 0
    EXCLUSIVE = 1


def compatible(mode_a, mode_b):
    """Two lock modes can be held on one object simultaneously."""
    return mode_a is LockMode.SHARED and mode_b is LockMode.SHARED


class LockRequest:
    """A queued (not yet granted) lock request."""

    __slots__ = ("tx", "obj", "mode", "event", "is_upgrade")

    def __init__(self, tx, obj, mode, event, is_upgrade):
        self.tx = tx
        self.obj = obj
        self.mode = mode
        self.event = event
        self.is_upgrade = is_upgrade

    @property
    def is_dead(self):
        """True if the wait event already fired (granted or victimized)."""
        return self.event.triggered

    def __repr__(self):
        kind = "upgrade" if self.is_upgrade else self.mode.name.lower()
        return f"<LockRequest tx={self.tx!r} obj={self.obj} {kind}>"


class _Lock:
    """Per-object lock state: current holders and the waiter queue."""

    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders = {}  # tx -> LockMode
        self.queue = deque()  # of LockRequest

    @property
    def is_idle(self):
        return not self.holders and not self.queue


class AcquireResult:
    """Outcome of :meth:`LockManager.acquire`.

    ``granted`` — the lock is held; ``event`` is None.
    Not granted with ``wait=True`` — ``event`` fires when granted (or
    fails with :class:`RestartTransaction` if the waiter is victimized).
    Not granted with ``wait=False`` — nothing was queued.
    """

    __slots__ = ("granted", "event", "request")

    def __init__(self, granted, event=None, request=None):
        self.granted = granted
        self.event = event
        self.request = request


class LockManager:
    """Lock table over an object-identifier space."""

    def __init__(self, env):
        self.env = env
        self._locks = {}  # obj -> _Lock

    # -- queries --------------------------------------------------------

    def mode_held(self, tx, obj):
        """The mode ``tx`` holds on ``obj`` (None if not a holder)."""
        lock = self._locks.get(obj)
        if lock is None:
            return None
        return lock.holders.get(tx)

    def holders(self, obj):
        """Mapping of holder transaction -> mode for ``obj``."""
        lock = self._locks.get(obj)
        if lock is None:
            return {}
        return dict(lock.holders)

    def queued_requests(self, obj):
        lock = self._locks.get(obj)
        if lock is None:
            return []
        return [r for r in lock.queue if not r.is_dead]

    def all_blocked_requests(self):
        """Every live queued request across the table."""
        for lock in self._locks.values():
            for request in lock.queue:
                if not request.is_dead:
                    yield request

    def locks_held_by(self, tx):
        """Objects currently locked by ``tx`` (any mode)."""
        return [
            obj for obj, lock in self._locks.items() if tx in lock.holders
        ]

    def would_conflict_with(self, tx, obj, mode):
        """Transactions a new request by ``tx`` would wait for, without
        enqueueing anything.

        Used by timestamp-priority algorithms (wound-wait, wait-die) to
        decide wound/wait/die before committing to a queue position:
        incompatible holders plus already-queued incompatible requests
        (which would be granted first under FCFS). An upgrade conflicts
        exactly with the other current holders.
        """
        lock = self._locks.get(obj)
        if lock is None:
            return set()
        held = lock.holders.get(tx)
        if held is not None and held >= mode:
            return set()
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            return {h for h in lock.holders if h is not tx}
        conflicts = {
            holder
            for holder, holder_mode in lock.holders.items()
            if holder is not tx and not compatible(mode, holder_mode)
        }
        for queued in lock.queue:
            if queued.is_dead or queued.tx is tx:
                continue
            if not compatible(mode, queued.mode):
                conflicts.add(queued.tx)
        return conflicts

    # -- acquisition ----------------------------------------------------

    def acquire(self, tx, obj, mode, wait=True):
        """Try to lock ``obj`` in ``mode`` for ``tx``.

        Re-requesting a mode already covered by the held mode is a no-op
        grant. Requesting EXCLUSIVE while holding SHARED is an upgrade.
        """
        lock = self._locks.get(obj)
        if lock is None:
            lock = self._locks[obj] = _Lock()
        held = lock.holders.get(tx)
        if held is not None and held >= mode:
            return AcquireResult(granted=True)

        is_upgrade = held is LockMode.SHARED and mode is LockMode.EXCLUSIVE
        if self._grantable(lock, tx, mode, is_upgrade):
            lock.holders[tx] = mode
            return AcquireResult(granted=True)

        if not wait:
            return AcquireResult(granted=False)

        event = self.env.event()
        request = LockRequest(tx, obj, mode, event, is_upgrade)
        if is_upgrade:
            self._enqueue_upgrade(lock, request)
        else:
            lock.queue.append(request)
        return AcquireResult(granted=False, event=event, request=request)

    def _grantable(self, lock, tx, mode, is_upgrade):
        if is_upgrade:
            # The sole holder may upgrade in place regardless of the queue:
            # queued waiters do not hold the object.
            return set(lock.holders) == {tx}
        if lock.queue:
            return False  # no overtaking queued waiters
        # Open-coded compatibility: EXCLUSIVE conflicts with any holder,
        # SHARED only with an EXCLUSIVE holder. Equivalent to
        # ``all(compatible(mode, held) ...)`` without a call per holder
        # on the grant fast path.
        holders = lock.holders
        if not holders:
            return True
        if mode is LockMode.EXCLUSIVE:
            return False
        return LockMode.EXCLUSIVE not in holders.values()

    @staticmethod
    def _enqueue_upgrade(lock, request):
        """Place an upgrade after existing upgrades but before others."""
        position = 0
        for queued in lock.queue:
            if not queued.is_upgrade:
                break
            position += 1
        lock.queue.insert(position, request)

    # -- waits-for support ------------------------------------------------

    def blockers(self, request):
        """Transactions ``request.tx`` is waiting for.

        Incompatible current holders, plus transactions queued ahead with
        an incompatible requested mode (they will be granted first under
        FCFS, so the requester transitively waits for them).
        """
        lock = self._locks.get(request.obj)
        if lock is None:
            return set()
        waiting_for = {
            holder
            for holder, held in lock.holders.items()
            if holder is not request.tx and not compatible(request.mode, held)
        }
        for queued in lock.queue:
            if queued is request:
                break
            if queued.is_dead or queued.tx is request.tx:
                continue
            if not compatible(request.mode, queued.mode):
                waiting_for.add(queued.tx)
        return waiting_for

    # -- release ----------------------------------------------------------

    def release_all(self, tx):
        """Drop every hold and queued request of ``tx``; grant waiters.

        Used at commit (release together at end-of-transaction) and at
        abort. Queued requests of ``tx`` whose event has not fired are
        silently discarded — the caller guarantees nothing waits on them
        anymore (the aborting process was already resumed by exception).
        """
        touched = []
        for obj, lock in self._locks.items():
            changed = lock.holders.pop(tx, None) is not None
            queue = lock.queue
            if queue and any(r.tx is tx for r in queue):
                lock.queue = deque(r for r in queue if r.tx is not tx)
                changed = True
            if changed:
                touched.append(obj)
        for obj in touched:
            self._grant_waiters(obj)
        self._prune()
        return touched

    def _grant_waiters(self, obj):
        lock = self._locks.get(obj)
        if lock is None:
            return
        while lock.queue:
            head = lock.queue[0]
            if head.is_dead:
                lock.queue.popleft()
                continue
            if head.is_upgrade:
                if set(lock.holders) != {head.tx}:
                    break
            elif lock.holders and not all(
                compatible(head.mode, held)
                for held in lock.holders.values()
            ):
                break
            lock.queue.popleft()
            lock.holders[head.tx] = head.mode
            head.event.succeed()

    def _prune(self):
        idle = [obj for obj, lock in self._locks.items() if lock.is_idle]
        for obj in idle:
            del self._locks[obj]

    def __repr__(self):
        held = sum(len(lock.holders) for lock in self._locks.values())
        queued = sum(len(lock.queue) for lock in self._locks.values())
        return f"<LockManager holds={held} queued={queued}>"
