"""The paper's Immediate-Restart algorithm.

Like blocking, transactions read-lock what they read and upgrade to write
locks for what they write — but a *denied* lock request aborts the
requester instead of blocking it. The restarted transaction is delayed
for a period on the order of one transaction response time (adaptive:
exponential with mean equal to the running-average response time) so the
conflicting transaction can finish; otherwise the same conflict recurs
immediately. There are never any waiters, hence never any deadlocks.
"""

from repro.cc.base import (
    DELAY_ADAPTIVE,
    INSTALL_AT_FINALIZE,
    ConcurrencyControl,
)
from repro.cc.errors import REASON_LOCK_CONFLICT, RestartTransaction
from repro.cc.locks import LockManager, LockMode


class ImmediateRestartCC(ConcurrencyControl):
    """Locking where conflicts restart the requester after a delay."""

    name = "immediate_restart"
    default_restart_delay = DELAY_ADAPTIVE
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        super().__init__()
        self.locks = None

    def attach(self, env, hooks=None):
        super().attach(env, hooks)
        self.locks = LockManager(env)
        return self

    def read_request(self, tx, obj):
        return self._nonwaiting_request(tx, obj, LockMode.SHARED)

    def write_request(self, tx, obj):
        return self._nonwaiting_request(tx, obj, LockMode.EXCLUSIVE)

    def _nonwaiting_request(self, tx, obj, mode):
        result = self.locks.acquire(tx, obj, mode, wait=False)
        if result.granted:
            return None
        raise RestartTransaction(
            REASON_LOCK_CONFLICT,
            f"{mode.name.lower()} lock denied on object {obj}",
        )

    def finalize_commit(self, tx):
        self.locks.release_all(tx)

    def abort(self, tx):
        self.locks.release_all(tx)
