"""The batched-replication execution backend (``backend="batched"``).

The classic lane treats every (algorithm, mpl, replication) as an
independent ``run_simulation`` call.  Because a replication is defined
as a *segment* of one deterministic trajectory (replication ``r`` runs
with ``warmup_batches = w + r*B``), the classic lane re-simulates the
whole prefix of the trajectory for every replication: ``R``
replications cost ``R*w + B*R*(R+1)/2`` batch-units.  This backend
simulates each point's trajectory **once** (``w + R*B`` batch-units)
and carves all ``R`` replication results from it:

* one :class:`~repro.core.engine.SystemModel` advances through every
  batch boundary;
* ``R`` :class:`~repro.stats.BatchMeansAnalyzer` instances — one per
  replication, with the replication's warmup — record the *same*
  per-batch values, so analyzer ``r`` retains exactly the batches the
  classic lane's replication ``r`` would retain;
* cumulative totals and diagnostics are snapshotted at each
  replication's end boundary, where they equal the classic lane's
  end-of-run collection (every totals source is cumulative and
  non-mutating by construction).

Bit-identity per replication follows from determinism: both lanes run
the same model, same seed, same event order, and read it at the same
boundaries.  The parity suite (``tests/fastlane/``) pins this against
the golden sha256 fingerprints on all three paper algorithms, finite
and infinite resources.

On top of the fused trajectory, grid points whose workload signatures
coincide share one precomputed transaction tape
(:class:`~repro.fastlane.tapes.TapeStore`), so the sweep draws each
transaction sequence once instead of once per point.

Retry semantics differ deliberately from the classic lane: a
supervised failure retries the *whole fused point* under a reseeded
trajectory (``point_seed(seed, algorithm, mpl, attempt)``), re-deriving
every replication from it, while the classic lane reseeds single
replications.  Checkpoints therefore bind the backend in their header
and refuse to resume across lanes.
"""

import time

from repro.core import RestartLivelockError
from repro.core.engine import SystemModel
from repro.core.simulation import (
    SimulationResult,
    _buffer_diagnostics,
    _collect_totals,
    _merge_invariant_diagnostics,
    _resolve_checker,
)
from repro.experiments.errors import PointExecutionError
from repro.experiments.runner import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    PointStatus,
    _PointWatchdog,
    _record_point,
    _rep_run,
    _sleep,
    point_seed,
    retry_backoff,
)
from repro.fastlane.kernel import drain_until
from repro.fastlane.tapes import TapeStore
from repro.stats import BatchMeansAnalyzer
from repro.workloads import create_workload_model

__all__ = ["run_batched_points", "run_point_replications"]


def run_point_replications(params, algorithm, run, replications,
                           workload=None, batch_callback=None,
                           invariants=None):
    """One fused trajectory; all ``replications`` results carved from it.

    Returns a list of ``replications`` :class:`SimulationResult`\\ s;
    element ``r`` is bit-identical to
    ``run_simulation(params, algorithm, run=_rep_run(run, r))``.
    ``batch_callback`` fires after every batch boundary of the fused
    trajectory (the sweep watchdog rides there, exactly as in the
    classic driver); ``workload`` is forwarded to the model (the
    batched sweep passes a tape-backed source).
    """
    checker, subscribers = _resolve_checker(invariants, ())
    model = SystemModel(
        params,
        algorithm=algorithm,
        seed=run.seed,
        workload=workload,
        subscribers=subscribers,
    )
    warmup, batches = run.warmup_batches, run.batches
    analyzers = [
        BatchMeansAnalyzer(
            warmup_batches=warmup + rep * batches,
            confidence=run.confidence,
        )
        for rep in range(replications)
    ]
    carved = [None] * replications
    env = model.env
    metrics = model.metrics
    batch_time = run.batch_time
    total_batches = warmup + replications * batches
    # Replication r's run ends at batch w + (r+1)*B: its analyzer must
    # not see later batches (the classic run has stopped by then), so
    # analyzers retire in order as their end boundaries pass.
    first_active = 0
    for batch_index in range(total_batches):
        snapshot = metrics.snapshot()
        drain_until(env, (batch_index + 1) * batch_time)
        values = metrics.batch_values(snapshot)
        for analyzer in analyzers[first_active:]:
            analyzer.record(values)
        if batch_callback is not None:
            batch_callback(model)
        # At a replication's end boundary the cumulative totals (and
        # the checker/buffer reports) equal what the classic lane
        # collects at that replication's end of run.
        boundary = batch_index + 1 - warmup
        if boundary > 0 and boundary % batches == 0:
            rep = boundary // batches - 1
            if rep < replications:
                carved[rep] = (
                    _collect_totals(model),
                    _merge_invariant_diagnostics(
                        _buffer_diagnostics(model), checker
                    ),
                )
                first_active = rep + 1
    results = []
    for rep in range(replications):
        totals, diagnostics = carved[rep]
        results.append(SimulationResult(
            algorithm=model.cc.name,
            params=params,
            run=_rep_run(run, rep),
            analyzer=analyzers[rep],
            totals=totals,
            diagnostics=diagnostics,
        ))
    return results


def _spot_modes(pending, invariants):
    """Per-(algorithm, mpl) invariant modes for ``invariants="spot"``.

    Spot-checking audits the first grid point of each algorithm
    strictly and runs the rest unchecked: the checker's invariants are
    structural (conservation, pairing, exclusivity), so one strictly
    audited trajectory per algorithm catches a broken engine while the
    bulk of the sweep keeps the observer-free fast path.  For any
    other mode the mapping is constant.
    """
    if invariants != "spot":
        return {}, invariants
    modes = {}
    seen = set()
    for algorithm, mpl, _ in pending:
        pair = (algorithm, mpl)
        if pair in modes:
            continue
        modes[pair] = "off" if algorithm in seen else "strict"
        seen.add(algorithm)
    return modes, None


def run_batched_points(sweep, pending, config, run, deadline,
                       stall_timeout, retries, progress, ckpt,
                       chaos=None, invariants=None, sleep=None):
    """Execute the pending (algorithm, mpl, rep) grid in one process.

    The sweep-side contract matches the classic sequential loop: every
    pending key is recorded exactly once (result + status, flushed to
    the checkpoint as each fused point finishes), supervised failures
    degrade to failed statuses after ``retries`` reseeded attempts,
    and strict invariant violations propagate unretried.
    """
    supervised = deadline is not None or stall_timeout is not None
    store = TapeStore()
    spot_modes, invariants = _spot_modes(pending, invariants)
    # Group the pending reps under their fused point, preserving grid
    # order (all reps of a point share one trajectory).
    groups = {}
    for algorithm, mpl, rep in pending:
        groups.setdefault((algorithm, mpl), []).append(rep)
    for (algorithm, mpl), reps in groups.items():
        params = config.params_for(mpl)
        point_invariants = spot_modes.get((algorithm, mpl), invariants)
        # Non-tapeable workload models (trace playback) build their own
        # content source inside the model; everything else replays a
        # shared tape.
        tapeable = create_workload_model(params).tapeable
        # A partially resumed point still needs the whole trajectory
        # prefix up to its last missing replication.
        replications = max(reps) + 1
        point_started = time.perf_counter()
        results = None
        failure = None
        attempts = 0
        for attempt in range(retries + 1):
            attempts += 1
            if attempt > 0:
                delay = retry_backoff(run.seed, algorithm, mpl, attempt)
                if delay > 0.0:
                    (sleep if sleep is not None else _sleep)(delay)
            if chaos is not None:
                chaos.on_point_start(algorithm, mpl)
            attempt_run = run if attempt == 0 else run.with_changes(
                seed=point_seed(run.seed, algorithm, mpl, attempt)
            )
            watchdog = (
                _PointWatchdog(deadline, stall_timeout)
                if supervised else None
            )
            try:
                results = run_point_replications(
                    params, algorithm, attempt_run, replications,
                    workload=(
                        store.workload(params, attempt_run.seed)
                        if tapeable else None
                    ),
                    batch_callback=watchdog,
                    invariants=point_invariants,
                )
                break
            except (PointExecutionError, RestartLivelockError) as error:
                failure = error
                if progress is not None:
                    outcome = (
                        "retrying" if attempt < retries else "giving up"
                    )
                    progress(
                        f"  {config.experiment_id}: {algorithm} "
                        f"mpl={mpl} (batched, {replications} rep(s)) "
                        f"attempt {attempts} failed ({error}); {outcome}"
                    )
        wall = time.perf_counter() - point_started
        error_text = (
            f"{type(failure).__name__}: {failure}"
            if failure is not None else None
        )
        status_kind = (
            STATUS_FAILED if results is None
            else STATUS_OK if attempts == 1
            else STATUS_RETRIED
        )
        for rep in reps:
            # Every rep of a fused point shares its attempt history;
            # the wall clock is split evenly so per-point aggregates
            # still sum to the real elapsed time.
            status = PointStatus(
                status=status_kind,
                attempts=attempts,
                error=error_text,
                wall_seconds=wall / len(reps),
            )
            result = results[rep] if results is not None else None
            _record_point(sweep, (algorithm, mpl, rep), result, status,
                          ckpt)
        if progress is not None:
            if results is not None:
                progress(
                    f"  {config.experiment_id}: "
                    f"{results[reps[0]].describe()} "
                    f"[batched x{len(reps)} rep(s)]"
                )
            else:
                progress(
                    f"  {config.experiment_id}: {algorithm} mpl={mpl} "
                    f"failed after {attempts} attempt(s) ({error_text})"
                )
