"""Fast-lane kernel helpers: direct drains of the DES event heap.

The reference :meth:`repro.des.Environment.run` already inlines its
hot loop (PR 4); what remains on a batched trajectory is the per-batch
re-entry overhead — ``until``-type dispatch, deadline validation and
loop-local rebinding once per batch boundary.  :func:`drain_until`
is that same inlined loop operating directly on the environment's
array-backed event heap (``_queue`` is a binary heap over
``(time, priority, eid, event)`` tuples in a plain list), minus the
dispatch: the fused driver calls it once per boundary with a bare
float deadline.

Semantics are exactly ``env.run(until=deadline)`` for a numeric
deadline: events strictly before the deadline are processed in
(time, priority, insertion-order), the clock then lands *on* the
deadline, and a failed event nobody waited on raises.  The parity
suite pins the equivalence; anything cleverer (calendar queues,
event-type specialization) belongs behind this seam.
"""

from heapq import heappop

from repro.des.errors import EmptySchedule

__all__ = ["drain_until", "peek_time"]


def drain_until(env, deadline):
    """Advance ``env`` to ``deadline``, processing every earlier event.

    Equivalent to ``env.run(until=deadline)`` with a numeric deadline,
    without the per-call ``until`` dispatch. ``deadline`` must not lie
    in the environment's past (same contract as ``run``).
    """
    if deadline < env._now:
        raise ValueError(
            f"until ({deadline}) must not be before now ({env._now})"
        )
    queue = env._queue
    pop = heappop
    while queue:
        when = queue[0][0]
        if when >= deadline:
            break
        event = pop(queue)[3]
        env._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value
    env._now = deadline


def peek_time(env):
    """Time of the environment's next event (EmptySchedule if none)."""
    if not env._queue:
        raise EmptySchedule("no more events")
    return env._queue[0][0]
