"""Precomputed workload tapes shared across grid points.

A transaction's read set, write set and class are a pure function of
``(workload seed, workload parameters, draw index)`` — the workload
streams are derived by name from the root seed and consumed only by
:class:`~repro.core.workload.WorkloadGenerator`, so the *k*-th
transaction generated at ``mpl=5`` is identical to the *k*-th generated
at ``mpl=200``, under any algorithm, on any resource tier.  The classic
lane nevertheless re-draws that sequence from scratch for every grid
point.  A :class:`WorkloadTape` draws it once — with the real
``WorkloadGenerator``, so draw-identity holds by construction, not by a
re-implementation that could drift — and stores the immutable spec
tuples; a :class:`TapeWorkload` replays them as fresh
:class:`~repro.core.transaction.Transaction` objects for each model.

The specs are shareable because a Transaction's ``read_set`` (tuple)
and ``write_set`` (frozenset) are immutable: the engine assigns
per-attempt state on the Transaction, never mutates the sets, so every
simulation replaying a tape can alias the same tuples.
"""

from repro.core.transaction import Transaction
from repro.des import StreamFactory
from repro.workloads import create_workload_model, resolve_workload_model

__all__ = ["TapeStore", "TapeWorkload", "WorkloadTape",
           "workload_signature"]

#: Transactions materialized per tape extension. Large enough to
#: amortize the per-chunk bookkeeping, small enough that short smoke
#: runs don't precompute far past what they consume.
TAPE_CHUNK = 256


def workload_signature(params, seed):
    """The hashable key identifying one transaction sequence.

    Two parameter sets produce byte-identical transaction sequences
    iff these fields match: the workload streams see nothing else.
    (``mpl``, resource counts, think times, service times, faults and
    the CC algorithm all influence *when* transactions are drawn, never
    *what* the next draw returns.)
    """
    mix = params.workload_mix
    mix_signature = None if mix is None else tuple(
        (cls.name, cls.weight, cls.min_size, cls.max_size, cls.write_prob)
        for cls in mix
    )
    return (
        seed,
        params.db_size,
        params.min_size,
        params.max_size,
        params.write_prob,
        params.hot_fraction,
        params.hot_access_prob,
        mix_signature,
        # The workload-model identity: two grid points differing only
        # in workload_model (or its spec) draw different content
        # sequences — e.g. heavy_tailed's size distribution — and must
        # never share a tape. Resolved, so the legacy
        # arrival_mode="open" spelling keys the same as open_poisson.
        resolve_workload_model(params),
        params.workload_spec,
        # Topology: transaction *content* is topology-independent, but
        # multi-site runs must never share tapes across node counts or
        # commit protocols — replica placement and prepare rounds feed
        # back into restart behaviour, and a colluding tape would mask
        # a topology-sensitive draw regression silently.
        params.nodes,
        params.network_delay,
        params.replication_factor,
        params.commit_protocol,
    )


class WorkloadTape:
    """The materialized transaction sequence of one workload signature.

    Specs are ``(read_set, write_set, tx_class_name)`` tuples with
    ``read_set`` a tuple and ``write_set`` a frozenset — exactly the
    immutable forms Transaction normalizes its sets into, so replaying
    allocates no per-transaction copies.  The tape extends on demand in
    :data:`TAPE_CHUNK`-sized chunks; the drawing generator keeps its
    stream state between extensions, so tape contents are independent
    of the chunk boundaries and of how many consumers pulled on it.
    """

    __slots__ = ("signature", "specs", "_generator")

    def __init__(self, params, seed, signature=None):
        self.signature = (
            signature if signature is not None
            else workload_signature(params, seed)
        )
        self.specs = []
        # The tape's private generator over a private stream factory:
        # same seed derivation, same draw code, therefore the same
        # sequence every model-owned generator would produce. Built
        # through the workload model so tapes replay whatever content
        # source the model supplies (heavy-tailed sizes included).
        workload_model = create_workload_model(params)
        if not workload_model.tapeable:
            raise ValueError(
                f"workload model {workload_model.name!r} is not "
                f"tapeable; the batched backend must build a per-model "
                f"source instead"
            )
        self._generator = workload_model.build_generator(
            params, StreamFactory(seed)
        )

    def __len__(self):
        return len(self.specs)

    def spec(self, index):
        """The ``index``-th transaction spec, extending the tape as needed."""
        specs = self.specs
        while index >= len(specs):
            self._extend(TAPE_CHUNK)
        return specs[index]

    def _extend(self, n):
        generator = self._generator
        append = self.specs.append
        for _ in range(n):
            tx = generator.new_transaction(terminal_id=0)
            append((tx.read_set, tx.write_set, tx.tx_class))


class TapeWorkload:
    """A model's workload source replaying a shared :class:`WorkloadTape`.

    Satisfies the engine's workload protocol (``new_transaction`` plus
    the ``generated`` counter) and reproduces ``WorkloadGenerator``
    byte-for-byte: the *k*-th call returns a Transaction with id
    ``k+1``, the tape's *k*-th read/write sets, and the same class tag.
    One TapeWorkload per model — the ``generated`` cursor is the
    model's position on the tape — while the tape itself is shared by
    every point of the sweep with the same workload signature.
    """

    __slots__ = ("params", "tape", "generated")

    def __init__(self, params, tape):
        self.params = params
        self.tape = tape
        self.generated = 0

    def new_transaction(self, terminal_id):
        """The next taped transaction, bound to ``terminal_id``."""
        index = self.generated
        specs = self.tape.specs
        if index >= len(specs):
            self.tape.spec(index)
        read_set, write_set, tx_class = specs[index]
        self.generated = index + 1
        tx = Transaction(
            tx_id=index + 1,
            terminal_id=terminal_id,
            read_set=read_set,
            write_set=write_set,
        )
        tx.tx_class = tx_class
        return tx


class TapeStore:
    """Workload tapes keyed by signature, shared across a sweep.

    The batched backend asks the store for a workload per (params,
    seed); points whose signatures coincide — every mpl of one
    experiment, typically — replay one tape instead of re-drawing
    ``points × transactions`` specs.  ``hits``/``misses`` make the
    sharing observable for tests and logs.
    """

    __slots__ = ("tapes", "hits", "misses")

    def __init__(self):
        self.tapes = {}
        self.hits = 0
        self.misses = 0

    def tape(self, params, seed):
        """The (possibly shared) tape for this workload signature."""
        signature = workload_signature(params, seed)
        tape = self.tapes.get(signature)
        if tape is None:
            self.misses += 1
            tape = WorkloadTape(params, seed, signature=signature)
            self.tapes[signature] = tape
        else:
            self.hits += 1
        return tape

    def workload(self, params, seed):
        """A fresh :class:`TapeWorkload` over the signature's tape."""
        return TapeWorkload(params, self.tape(params, seed))
