"""The batched-replication fast lane (``run_sweep(backend="batched")``).

A second execution backend for sweeps that is bit-identical per
replication to the classic lane but simulates each grid point's
trajectory once instead of once per replication, and shares
precomputed workload tapes across points.  See
:mod:`repro.fastlane.backend` for the execution model and its parity
argument, :mod:`repro.fastlane.tapes` for tape sharing, and
:mod:`repro.fastlane.kernel` for the direct event-heap drain.
"""

from repro.fastlane.backend import run_batched_points, run_point_replications
from repro.fastlane.kernel import drain_until, peek_time
from repro.fastlane.tapes import (
    TapeStore,
    TapeWorkload,
    WorkloadTape,
    workload_signature,
)

__all__ = [
    "TapeStore",
    "TapeWorkload",
    "WorkloadTape",
    "drain_until",
    "peek_time",
    "run_batched_points",
    "run_point_replications",
    "workload_signature",
]
