"""Serializability verification of committed histories.

Every algorithm in :mod:`repro.cc` guarantees an *equivalent serial
order* for its committed transactions (commit-point order for the strict
2PL variants and optimistic validation, timestamp order for the
timestamp-ordering family). The engine tags each committed transaction
with its serial key and records which writer's version every read
observed (:class:`repro.core.engine.CommittedRecord`).

:func:`check_serializability` replays the committed transactions
serially in key order against a reference single-value store and checks
that every observed read matches the replay — an *exact* end-to-end
correctness test for the concurrency control, not a heuristic. A
violation means the committed history is not equivalent to the claimed
serial order (i.e. the algorithm, lock manager, or engine has a bug).

:func:`conflict_graph` additionally builds the classic serialization
graph over committed transactions for single-version algorithms, for use
with cycle checks (e.g. networkx in the test suite).
"""

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class HistoryViolation:
    """One read that disagrees with the serial replay."""

    tx_id: int
    obj: int
    observed_writer: Optional[int]
    expected_writer: Optional[int]

    def __str__(self):
        return (
            f"transaction {self.tx_id} read object {self.obj} from "
            f"writer {self.observed_writer}, but serial replay expects "
            f"writer {self.expected_writer}"
        )


@dataclass
class VerificationReport:
    """Outcome of a serializability check."""

    transactions_checked: int
    reads_checked: int
    violations: List[HistoryViolation] = field(default_factory=list)
    final_state_matches: Optional[bool] = None

    @property
    def ok(self):
        return not self.violations and self.final_state_matches is not False

    def __str__(self):
        status = "OK" if self.ok else "SERIALIZABILITY VIOLATED"
        return (
            f"{status}: {self.transactions_checked} transactions, "
            f"{self.reads_checked} reads checked, "
            f"{len(self.violations)} violations"
        )


def check_serializability(history, final_state=None):
    """Replay ``history`` serially in serial-key order and verify reads.

    ``history`` is a sequence of CommittedRecord (or anything exposing
    ``tx_id, read_set, installed_writes, reads_seen, serial_key``).
    ``final_state``, if given, is the object store's obj -> last-writer
    mapping; the replay's final state must match it on every object the
    replay wrote.
    """
    records = sorted(history, key=lambda r: r.serial_key)
    replica = {}
    violations = []
    reads_checked = 0
    for record in records:
        for obj in record.read_set:
            expected = replica.get(obj)
            observed = record.reads_seen.get(obj)
            reads_checked += 1
            if observed != expected:
                violations.append(
                    HistoryViolation(record.tx_id, obj, observed, expected)
                )
        for obj in record.installed_writes:
            replica[obj] = record.tx_id
    report = VerificationReport(
        transactions_checked=len(records),
        reads_checked=reads_checked,
        violations=violations,
    )
    if final_state is not None:
        report.final_state_matches = all(
            final_state.get(obj) == writer for obj, writer in replica.items()
        )
    return report


def conflict_graph(history):
    """Serialization-graph edges for a single-version committed history.

    Nodes are transaction ids; a directed edge u -> v means some
    conflicting pair of operations ordered u before v in the equivalent
    serial order. Built from the serial keys (which the algorithms
    guarantee to be conflict-consistent), this graph is acyclic by
    construction *if the serial keys are internally consistent*; the test
    suite cross-checks it with the read/write sets via networkx.
    """
    records = sorted(history, key=lambda r: r.serial_key)
    edges = set()
    last_writer = {}
    readers_since_write = {}
    for record in records:
        for obj in record.read_set:
            writer = last_writer.get(obj)
            if writer is not None and writer != record.tx_id:
                edges.add((writer, record.tx_id))  # wr conflict
        for obj in record.installed_writes:
            writer = last_writer.get(obj)
            if writer is not None and writer != record.tx_id:
                edges.add((writer, record.tx_id))  # ww conflict
            for reader in readers_since_write.get(obj, ()):
                if reader != record.tx_id:
                    edges.add((reader, record.tx_id))  # rw conflict
            readers_since_write[obj] = set()
            last_writer[obj] = record.tx_id
        for obj in record.read_set:
            readers_since_write.setdefault(obj, set()).add(record.tx_id)
    return edges
