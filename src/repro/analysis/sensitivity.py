"""One-factor-at-a-time parameter sensitivity analysis.

The paper's central message is that modeling assumptions drive
conclusions; this module makes "how sensitive is metric M to parameter
P?" a one-liner. It powers the restart-delay ablation bench and is a
general tool for exploring the model:

    >>> from repro.analysis import parameter_sweep
    >>> sweep = parameter_sweep(
    ...     SimulationParameters.table2(mpl=50), "blocking",
    ...     field="write_prob", values=[0.0, 0.25, 0.5, 1.0],
    ... )                                                # doctest: +SKIP
    >>> sweep.series("throughput")                       # doctest: +SKIP
    [(0.0, 6.9), (0.25, 5.1), (0.5, 4.0), (1.0, 2.8)]
"""

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core import RunConfig, run_simulation


@dataclass
class ParameterSweepResult:
    """Results of varying one parameter over a list of values."""

    field_name: str
    algorithm: str
    #: value -> SimulationResult
    results: Dict[Any, Any] = field(default_factory=dict)

    def series(self, metric):
        """[(parameter value, metric mean)] in sweep order."""
        return [
            (value, result.mean(metric))
            for value, result in self.results.items()
        ]

    def best(self, metric, maximize=True):
        """(value, metric mean) of the best point."""
        series = self.series(metric)
        chooser = max if maximize else min
        return chooser(series, key=lambda point: point[1])

    def relative_range(self, metric):
        """(max - min) / max of the metric over the sweep.

        A quick scalar answer to "does this parameter matter?": 0 means
        the metric is flat across the sweep; values near 1 mean the
        worst setting loses almost everything relative to the best.
        """
        values = [mean for _, mean in self.series(metric)]
        top = max(values)
        if top == 0:
            return 0.0
        return (top - min(values)) / top

    def describe(self, metric="throughput"):
        lines = [
            f"sensitivity of {metric} to {self.field_name} "
            f"({self.algorithm}):"
        ]
        for value, mean in self.series(metric):
            lines.append(f"  {self.field_name}={value!r:>12}: {mean:9.3f}")
        lines.append(
            f"  relative range: {self.relative_range(metric):.1%}"
        )
        return "\n".join(lines)


def parameter_sweep(base_params, algorithm, field, values, run=None):
    """Run the model once per value of ``field``, all else fixed.

    ``field`` is any :class:`SimulationParameters` field name; values
    are substituted via ``with_changes`` (so they are validated).
    """
    run = run or RunConfig(batches=4, batch_time=20.0, warmup_batches=1)
    sweep = ParameterSweepResult(field_name=field, algorithm=str(algorithm))
    for value in values:
        params = base_params.with_changes(**{field: value})
        sweep.results[value] = run_simulation(params, algorithm, run)
    return sweep
