"""Analysis utilities: correctness verification and adaptive control.

* :mod:`repro.analysis.verify` — serializability checking of committed
  histories via serial replay in each algorithm's equivalent serial
  order.
* :mod:`repro.analysis.adaptive` — an adaptive multiprogramming-level
  controller, the "open problem" sketched in the paper's conclusions.
"""

from repro.analysis.verify import (
    HistoryViolation,
    VerificationReport,
    check_serializability,
    conflict_graph,
)
from repro.analysis.adaptive import AdaptiveMplController, AdaptiveMplResult
from repro.analysis.bounds import (
    OperationalBounds,
    check_result_against_bounds,
    operational_bounds,
)
from repro.analysis.sensitivity import ParameterSweepResult, parameter_sweep

__all__ = [
    "check_serializability",
    "conflict_graph",
    "VerificationReport",
    "HistoryViolation",
    "AdaptiveMplController",
    "AdaptiveMplResult",
    "parameter_sweep",
    "ParameterSweepResult",
    "operational_bounds",
    "OperationalBounds",
    "check_result_against_bounds",
]
