"""Adaptive multiprogramming-level control.

The paper's conclusions: "the level of multiprogramming in database
systems should be carefully controlled ... adaptive algorithms that
dynamically adjust the multiprogramming level in order to maximize
system throughput need to be designed. Some performance indicators that
might be used ... are useful resource utilization, running averages of
throughput or response time". The design of such an algorithm is left
as an open problem; this module implements one straightforward instance.

:class:`AdaptiveMplController` hill-climbs the engine's admission limit
(``SystemModel.mpl_limit``) between measurement epochs: it perturbs the
limit by a step, keeps the direction while the epoch's throughput
improves, and reverses (halving the step) when it degrades. An optional
useful-utilization guard refuses increases once wasted resources exceed
a threshold fraction of total utilization.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.engine import SystemModel


@dataclass
class AdaptiveMplResult:
    """Trace and outcome of one adaptive-control run."""

    #: (epoch_index, mpl_in_effect, measured_throughput) per epoch.
    trace: List[Tuple[int, int, float]] = field(default_factory=list)
    final_mpl: int = 0
    best_mpl: int = 0
    best_throughput: float = 0.0

    @property
    def epochs(self):
        return len(self.trace)


class AdaptiveMplController:
    """Hill-climbing controller over the engine's admission limit."""

    def __init__(self, model, min_mpl=1, max_mpl=None, initial_step=5,
                 waste_guard=0.5, noise_tolerance=0.05):
        if not isinstance(model, SystemModel):
            raise TypeError("model must be a SystemModel")
        self.model = model
        self.min_mpl = min_mpl
        self.max_mpl = max_mpl or model.params.num_terms
        self.step = initial_step
        self.direction = +1
        self.waste_guard = waste_guard
        #: Relative throughput drop below which an epoch-to-epoch change
        #: is treated as measurement noise rather than degradation.
        self.noise_tolerance = noise_tolerance
        self._last_throughput = None

    def run(self, epochs, epoch_time, warmup_time=0.0):
        """Run the model for ``epochs`` control epochs of ``epoch_time``.

        The controller observes each epoch's throughput and adjusts
        ``mpl_limit`` between epochs. Returns an
        :class:`AdaptiveMplResult` with the full trace.
        """
        model = self.model
        if warmup_time > 0.0:
            model.run_until(model.env.now + warmup_time)
        result = AdaptiveMplResult()
        for epoch in range(epochs):
            snapshot = model.metrics.snapshot()
            mpl_in_effect = model.mpl_limit
            model.run_until(model.env.now + epoch_time)
            values = model.metrics.batch_values(snapshot)
            throughput = values["throughput"]
            result.trace.append((epoch, mpl_in_effect, throughput))
            if throughput > result.best_throughput:
                result.best_throughput = throughput
                result.best_mpl = mpl_in_effect
            self._adjust(throughput, values)
        result.final_mpl = model.mpl_limit
        return result

    def _adjust(self, throughput, values):
        if self._last_throughput is not None:
            threshold = self._last_throughput * (1 - self.noise_tolerance)
            if throughput < threshold:
                # Clearly worse than last epoch: reverse, smaller steps.
                self.direction = -self.direction
                self.step = max(1, self.step // 2)
        if self.direction > 0 and self._wasteful(values):
            # Useful utilization is collapsing: do not push mpl higher.
            self.direction = -1
        self._last_throughput = throughput
        new_mpl = self.model.mpl_limit + self.direction * self.step
        self.model.mpl_limit = max(self.min_mpl, min(self.max_mpl, new_mpl))

    def _wasteful(self, values):
        total = values["disk_util"]
        useful = values["disk_util_useful"]
        if total <= 0.0:
            return False
        return (total - useful) / total > self.waste_guard
