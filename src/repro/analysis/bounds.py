"""Operational-analysis bounds for the closed queuing model.

Classical asymptotic bound analysis (Denning & Buzen) gives hard limits
on what any concurrency control algorithm could achieve in the paper's
model, from service demands alone:

* per-transaction demand at each service center:
  ``D_cpu`` (all object CPU bursts over the CPU pool) and ``D_disk``
  (all object I/O over the disks);
* throughput can never exceed the bottleneck rate ``1 / D_max`` nor the
  no-queueing rate ``N / (R0 + Z)`` (N terminals, minimal response R0,
  think time Z);
* response time can never drop below the raw demand ``R0``.

Data contention only *subtracts* from these bounds, so they are true
for every algorithm — the test suite uses them as universal oracles,
and the contention-free ``noop`` baseline is verified to approach them.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class OperationalBounds:
    """Bounds implied by a :class:`SimulationParameters` configuration."""

    #: Mean per-transaction CPU demand over the whole CPU pool (seconds).
    cpu_demand: float
    #: Mean per-transaction disk demand over all disks (seconds).
    disk_demand: float
    #: Bottleneck demand: the largest per-server demand (inf servers -> 0).
    max_server_demand: float
    #: Minimal response time: raw service plus internal thinking.
    min_response_time: float
    #: Throughput ceiling from the bottleneck (inf if no finite server).
    bottleneck_throughput: float
    #: Throughput ceiling from the population (terminals / cycle time).
    population_throughput: float

    @property
    def throughput_ceiling(self):
        """The binding asymptotic throughput bound."""
        return min(self.bottleneck_throughput, self.population_throughput)

    def describe(self):
        return (
            f"demands: cpu={self.cpu_demand * 1000:.1f}ms "
            f"disk={self.disk_demand * 1000:.1f}ms per transaction; "
            f"R0={self.min_response_time:.3f}s; "
            f"X <= min(1/Dmax={self.bottleneck_throughput:.2f}, "
            f"N/(R0+Z)={self.population_throughput:.2f}) tps"
        )


def operational_bounds(params):
    """Compute :class:`OperationalBounds` for a parameter set.

    Demands use mean transaction size: ``tran_size`` reads (obj_io +
    obj_cpu each) plus ``tran_size * write_prob`` writes (obj_cpu at
    request time + obj_io at update time), as in
    :meth:`SimulationParameters.expected_service_time`.
    """
    accesses = params.expected_reads() + params.expected_writes()
    total_cpu = accesses * params.obj_cpu
    total_disk = accesses * params.obj_io

    per_cpu = 0.0 if params.num_cpus is None else total_cpu / params.num_cpus
    # Accesses spread uniformly over the disks.
    per_disk = (
        0.0 if params.num_disks is None
        else total_disk / params.num_disks
    )
    max_demand = max(per_cpu, per_disk)

    min_response = total_cpu + total_disk + params.int_think_time
    bottleneck = math.inf if max_demand == 0.0 else 1.0 / max_demand
    population = params.num_terms / (
        min_response + params.ext_think_time
    )
    return OperationalBounds(
        cpu_demand=total_cpu,
        disk_demand=total_disk,
        max_server_demand=max_demand,
        min_response_time=min_response,
        bottleneck_throughput=bottleneck,
        population_throughput=population,
    )


def check_result_against_bounds(result, tolerance=0.05):
    """Verify a SimulationResult respects its configuration's bounds.

    Returns the bounds; raises AssertionError with a diagnostic if the
    measured throughput exceeds the ceiling or the mean response falls
    below the demand floor (beyond ``tolerance`` relative slack —
    bounds use the *mean* transaction size, so small statistical
    excursions are legitimate).
    """
    bounds = operational_bounds(result.params)
    ceiling = bounds.throughput_ceiling * (1.0 + tolerance)
    if result.throughput > ceiling:
        raise AssertionError(
            f"throughput {result.throughput:.3f} exceeds the asymptotic "
            f"ceiling {bounds.throughput_ceiling:.3f} "
            f"({bounds.describe()})"
        )
    floor = bounds.min_response_time * (1.0 - tolerance)
    measured = result.totals.get("response_time_overall_mean")
    if measured is not None and measured > 0 and measured < floor:
        raise AssertionError(
            f"mean response {measured:.3f}s is below the demand floor "
            f"{bounds.min_response_time:.3f}s ({bounds.describe()})"
        )
    return bounds
