"""Figure 3 — Throughput, low conflict (db=10,000), infinite resources.

Paper claim: with rare conflicts "it makes little difference which
concurrency control algorithm is used"; the three curves track each
other closely, rising with the multiprogramming level.
"""

from benchmarks.conftest import build_figure, value_at


def test_fig03_low_conflict_infinite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 3, results_dir)
    algorithms = data.algorithms()
    assert set(algorithms) == {
        "blocking", "immediate_restart", "optimistic"
    }
    mpls = [mpl for mpl, _ in data.values("throughput", "blocking")]
    # All three algorithms close at every multiprogramming level.
    for mpl in mpls:
        values = [
            value_at(data, "throughput", algorithm, mpl)
            for algorithm in algorithms
        ]
        assert max(values) <= 1.30 * min(values), (
            f"algorithms should be close under low conflict at mpl={mpl}: "
            f"{dict(zip(algorithms, values))}"
        )
    # Throughput rises with mpl (no thrashing in sight at low conflict).
    for algorithm in algorithms:
        series = data.values("throughput", algorithm)
        assert series[-1][1] > 2.0 * series[0][1], (
            f"{algorithm} should scale with mpl under infinite resources"
        )
