"""Ablation — static (predeclared) vs. dynamic two-phase locking.

The models this paper descends from ([Ries77, Ries79]) used *static*
locking; the paper's Blocking algorithm is *dynamic* 2PL, and the TODS
1987 expansion of this work compares the two directly. This bench runs
both through the Table 2 finite-resource configuration over the mpl
sweep and checks the structural differences:

* static locking never restarts (ordered predeclared acquisition is
  deadlock-free), dynamic locking restarts deadlock victims;
* both peak at a moderate mpl and stay within one throughput band —
  neither dominates everywhere.
"""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
MPLS = (5, 25, 100, 200)


@pytest.fixture(scope="module")
def locking_results():
    results = {}
    for algorithm in ("blocking", "static_locking"):
        for mpl in MPLS:
            params = SimulationParameters.table2(mpl=mpl)
            results[(algorithm, mpl)] = run_simulation(
                params, algorithm, RUN
            )
    return results


def test_static_vs_dynamic_locking(benchmark, locking_results):
    results = benchmark.pedantic(
        lambda: locking_results, rounds=1, iterations=1
    )
    print()
    for mpl in MPLS:
        dynamic = results[("blocking", mpl)]
        static = results[("static_locking", mpl)]
        print(
            f"  mpl={mpl:3d}: dynamic {dynamic.throughput:5.2f} tps "
            f"(restarts/commit {dynamic.mean('restart_ratio'):.3f})  "
            f"static {static.throughput:5.2f} tps "
            f"(blocks/commit {static.mean('block_ratio'):.2f})"
        )

    for mpl in MPLS:
        static = results[("static_locking", mpl)]
        dynamic = results[("blocking", mpl)]
        # Static locking is deadlock-free by construction.
        assert static.totals["restarts"] == 0
        # Same throughput band (neither collapses relative to the other).
        assert static.throughput > 0.4 * dynamic.throughput
        assert dynamic.throughput > 0.4 * static.throughput
    # Dynamic locking pays for its flexibility with deadlock restarts
    # once contention is real.
    assert results[("blocking", 100)].totals["restarts"] > 0
