"""Microbenchmarks of the analytic surrogate.

The exploration driver's promise is throughput: ~100k surrogate
evaluations per half-minute. These benchmarks pin that cost — one
contended prediction (the Illinois root find over the fixed-m
Schweitzer solver) and a small exploration block (the full
streaming pipeline: cross product, optimal-mpl tracking, uncertainty
flagging, crossover detection) — so a solver regression that would
quietly turn the minute-scale sweep into an hour-scale one fails CI.
"""

from repro.analytic.contention import surrogate_prediction
from repro.analytic.explore import ExplorationSpace, explore
from repro.core import SimulationParameters

CONTENDED = SimulationParameters.table2(db_size=300, mpl=50)

#: A mid-size exploration block: 16 configurations x 3 mpls x
#: 3 algorithms = 144 evaluations — enough work to be stable on
#: shared runners, small enough to run in tens of milliseconds.
BLOCK = ExplorationSpace(
    db_sizes=(250, 1000, 4000, 8000),
    max_sizes=(8, 16),
    num_disks=(1, 8),
    num_cpus=(1,),
    write_probs=(0.25,),
    ext_think_times=(1.0,),
    mpls=(5, 25, 100),
    algorithms=("blocking", "immediate_restart", "optimistic"),
)


def test_surrogate_single_prediction(benchmark):
    """One contended blocking prediction (closed + capped solves)."""

    def run():
        return surrogate_prediction(CONTENDED, "blocking").throughput

    assert benchmark(run) > 0.0


def test_surrogate_explore_block(benchmark):
    """A 144-evaluation exploration block through the full pipeline."""

    def run():
        return explore(space=BLOCK)

    report = benchmark(run)
    assert report.evaluations == BLOCK.size()
    assert len(report.optimal) == BLOCK.config_count()
