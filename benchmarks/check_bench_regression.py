"""Compare a pytest-benchmark JSON against a checked-in baseline.

CI runs ``bench_engine_micro.py`` into ``bench_engine_ci.json``,
``bench_sweep.py`` into ``bench_sweep_ci.json``,
``bench_surrogate.py`` into ``bench_surrogate_ci.json`` and
``bench_distributed.py`` into ``bench_distributed_ci.json``, then
calls this script once per file, which diffs every benchmark against
the pinned baseline (``BENCH_engine.json`` / ``BENCH_sweep.json`` /
``BENCH_surrogate.json`` / ``BENCH_distributed.json`` at the
repository root) and **fails** when a
gated benchmark is more than ``--threshold`` slower than the
baseline. Gated are the end-to-end runs — the full-model engine
benchmark, the two batched-lane sweep benchmarks, the surrogate
exploration block, and the four-node 2PC distributed run
— which average over enough work to be stable on
shared runners; the narrower microbenchmarks and the classic-lane
speedup denominators are reported but only warn.

For the sweep benchmarks the script also reports the measured
classic/batched speedup per grid shape, so the fast lane's advantage
is visible (and its erosion detectable) in every CI log.

Usage::

    python benchmarks/check_bench_regression.py bench_engine_ci.json \
        [--baseline BENCH_engine.json] [--threshold 0.10]
    python benchmarks/check_bench_regression.py bench_sweep_ci.json \
        --baseline BENCH_sweep.json
    python benchmarks/check_bench_regression.py bench_surrogate_ci.json \
        --baseline BENCH_surrogate.json

Exit status: 0 = within threshold, 1 = gated regression, 2 = bad input
(missing file, no gated benchmark present).
"""

import argparse
import json
import sys

#: Benchmarks whose regression fails the build. The rest warn only.
#: A run needs to contain at least one of these; whichever appear in
#: both the current run and the baseline are enforced.
GATED_BENCHMARKS = (
    "test_full_model_bus_fast_path",
    "test_sweep_batched_lane_r4",
    "test_sweep_batched_lane_r12",
    "test_surrogate_explore_block",
    "test_distributed_four_node_2pc",
)

#: (classic, batched, label) benchmark pairs whose wall-clock ratio is
#: reported as a speedup when both sides appear in the current run.
SPEEDUP_PAIRS = (
    ("test_sweep_classic_lane_r4", "test_sweep_batched_lane_r4",
     "3 algorithms x 5 mpls x 4 replications"),
    ("test_sweep_classic_lane_r12", "test_sweep_batched_lane_r12",
     "3 algorithms x 1 mpl x 12 replications"),
)

#: Default: fail on a >10% slowdown of a gated benchmark.
DEFAULT_THRESHOLD = 0.10


def load_means(path):
    """Mapping benchmark name -> mean seconds from a pytest-benchmark JSON."""
    with open(path) as f:
        data = json.load(f)
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in data["benchmarks"]
    }


def compare(current, baseline, gated=GATED_BENCHMARKS,
            threshold=DEFAULT_THRESHOLD):
    """Diff two name->mean mappings.

    Returns ``(failures, report_lines)`` where ``failures`` is the list
    of gated benchmarks over threshold (empty = pass). Benchmarks
    present on only one side are reported but never fail the gate.
    """
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            lines.append(f"  {name}: missing from current run")
            continue
        if name not in baseline:
            lines.append(f"  {name}: new benchmark (no baseline)")
            continue
        before, after = baseline[name], current[name]
        change = (after - before) / before
        marker = ""
        if name in gated:
            marker = " [gated]"
            if change > threshold:
                marker = " [gated: FAIL]"
                failures.append(name)
        lines.append(
            f"  {name}: {before:.6f}s -> {after:.6f}s "
            f"({change:+.1%}){marker}"
        )
    return failures, lines


def speedup_lines(current, pairs=SPEEDUP_PAIRS):
    """Classic/batched wall-clock ratios for the pairs present."""
    lines = []
    for classic, batched, label in pairs:
        if classic in current and batched in current:
            ratio = current[classic] / current[batched]
            lines.append(
                f"  batched-lane speedup [{label}]: {ratio:.2f}x "
                f"({current[classic]:.3f}s classic / "
                f"{current[batched]:.3f}s batched)"
            )
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate CI on benchmark regressions vs a pinned baseline."
    )
    parser.add_argument(
        "current", help="pytest-benchmark JSON from this run"
    )
    parser.add_argument(
        "--baseline", default="BENCH_engine.json",
        help="pinned reference JSON (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown that fails a gated benchmark "
             "(default: 0.10)",
    )
    args = parser.parse_args(argv)
    try:
        current = load_means(args.current)
        baseline = load_means(args.baseline)
    except (OSError, KeyError, ValueError) as error:
        print(f"bench-gate: cannot load benchmark data: {error}",
              file=sys.stderr)
        return 2
    if not any(name in current for name in GATED_BENCHMARKS):
        print(
            f"bench-gate: none of the gated benchmarks "
            f"({', '.join(GATED_BENCHMARKS)}) appear in {args.current}",
            file=sys.stderr,
        )
        return 2
    failures, lines = compare(
        current, baseline, threshold=args.threshold
    )
    print(f"bench-gate: current={args.current} baseline={args.baseline} "
          f"threshold={args.threshold:.0%}")
    print("\n".join(lines))
    for line in speedup_lines(current):
        print(line)
    if failures:
        print(
            f"bench-gate: FAIL — {', '.join(failures)} regressed more "
            f"than {args.threshold:.0%} vs the pinned baseline",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
