"""Compare a pytest-benchmark JSON against the checked-in baseline.

CI runs ``bench_engine_micro.py`` into ``bench_engine_ci.json`` and then
calls this script, which diffs every benchmark against
``BENCH_engine.json`` at the repository root and **fails** when the
gated end-to-end benchmark (``test_full_model_bus_fast_path``) is more
than ``--threshold`` slower than the baseline. The other
microbenchmarks are reported but only warn: they measure narrow slices
whose variance on shared CI runners would make a hard gate flaky,
while the full-model run averages over enough work to be stable.

Usage::

    python benchmarks/check_bench_regression.py bench_engine_ci.json \
        [--baseline BENCH_engine.json] [--threshold 0.10]

Exit status: 0 = within threshold, 1 = gated regression, 2 = bad input
(missing file, missing benchmark).
"""

import argparse
import json
import sys

#: The benchmark whose regression fails the build. The rest warn only.
GATED_BENCHMARK = "test_full_model_bus_fast_path"

#: Default: fail on a >10% slowdown of the gated benchmark.
DEFAULT_THRESHOLD = 0.10


def load_means(path):
    """Mapping benchmark name -> mean seconds from a pytest-benchmark JSON."""
    with open(path) as f:
        data = json.load(f)
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in data["benchmarks"]
    }


def compare(current, baseline, gated=GATED_BENCHMARK,
            threshold=DEFAULT_THRESHOLD):
    """Diff two name->mean mappings.

    Returns ``(failures, report_lines)`` where ``failures`` is the list
    of gated benchmarks over threshold (empty = pass). Benchmarks
    present on only one side are reported but never fail the gate.
    """
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            lines.append(f"  {name}: missing from current run")
            continue
        if name not in baseline:
            lines.append(f"  {name}: new benchmark (no baseline)")
            continue
        before, after = baseline[name], current[name]
        change = (after - before) / before
        marker = ""
        if name == gated:
            marker = " [gated]"
            if change > threshold:
                marker = " [gated: FAIL]"
                failures.append(name)
        lines.append(
            f"  {name}: {before:.6f}s -> {after:.6f}s "
            f"({change:+.1%}){marker}"
        )
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate CI on engine microbenchmark regressions."
    )
    parser.add_argument(
        "current", help="pytest-benchmark JSON from this run"
    )
    parser.add_argument(
        "--baseline", default="BENCH_engine.json",
        help="pinned reference JSON (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional slowdown that fails the gated benchmark "
             "(default: 0.10)",
    )
    args = parser.parse_args(argv)
    try:
        current = load_means(args.current)
        baseline = load_means(args.baseline)
    except (OSError, KeyError, ValueError) as error:
        print(f"bench-gate: cannot load benchmark data: {error}",
              file=sys.stderr)
        return 2
    if GATED_BENCHMARK not in current:
        print(
            f"bench-gate: gated benchmark {GATED_BENCHMARK!r} missing "
            f"from {args.current}", file=sys.stderr,
        )
        return 2
    failures, lines = compare(
        current, baseline, threshold=args.threshold
    )
    print(f"bench-gate: current={args.current} baseline={args.baseline} "
          f"threshold={args.threshold:.0%}")
    print("\n".join(lines))
    if failures:
        print(
            f"bench-gate: FAIL — {', '.join(failures)} regressed more "
            f"than {args.threshold:.0%} vs the pinned baseline",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
