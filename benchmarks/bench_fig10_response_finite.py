"""Figure 10 — Response time mean and std dev, 1 CPU / 2 disks.

Paper claims encoded below:
* blocking has the lowest mean response time over most mpls (and the
  lowest globally);
* the std-dev ordering is blocking best, immediate-restart worst, with
  the optimistic algorithm in between;
* differences are more pronounced than in the infinite-resource case.
"""

from benchmarks.conftest import build_figure, majority, value_at


def test_fig10_response_finite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 10, results_dir)
    mpls = [mpl for mpl, _ in data.values("response_time", "blocking")]

    # The optimistic algorithm has the worst mean response time over
    # most mpls, and blocking stays within a whisker of the best at
    # every point. (The paper additionally ranks immediate-restart
    # above blocking at no point; in our reproduction the two are tied
    # to within noise at low mpl, and at mpl=200 immediate-restart's
    # mean is biased low by censoring — repeatedly-delayed transactions
    # that have not yet committed are absent from the average. See
    # EXPERIMENTS.md.)
    for algorithm in ("immediate_restart", "blocking"):
        pairs = [
            (
                value_at(data, "response_time", "optimistic", mpl),
                value_at(data, "response_time", algorithm, mpl),
            )
            for mpl in mpls
        ]
        assert majority(pairs), (
            f"optimistic should respond slower than {algorithm} "
            f"over most mpls"
        )
    for mpl in mpls:
        best = min(
            value_at(data, "response_time", algorithm, mpl)
            for algorithm in data.algorithms()
        )
        assert value_at(data, "response_time", "blocking", mpl) <= (
            1.15 * best
        ), f"blocking should stay near the best response at mpl={mpl}"

    # Std dev: blocking is the steadiest — both restart strategies show
    # larger response-time variability over most mpls.
    for algorithm in ("immediate_restart", "optimistic"):
        pairs = [
            (
                value_at(data, "response_time_std", algorithm, mpl),
                value_at(data, "response_time_std", "blocking", mpl),
            )
            for mpl in mpls
        ]
        assert majority(pairs), (
            f"{algorithm} should have larger response-time std dev "
            "than blocking over most mpls"
        )
