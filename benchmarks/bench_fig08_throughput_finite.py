"""Figure 8 — Throughput with 1 CPU and 2 disks (Experiment 3).

Paper claims encoded below:
* the best global throughput belongs to blocking (paper peak: mpl=25);
* the restart-oriented strategies peak earlier (mpl ~= 10) and decline
  as restarts waste the bottleneck disks;
* beyond its peak every algorithm's curve falls or flattens — nobody
  scales to mpl=200 in a resource-limited system.

Known reproduction deviation (documented in EXPERIMENTS.md): the paper
found immediate-restart's mpl=200 throughput slightly above blocking's;
in our reproduction blocking stays marginally ahead at mpl=200. The
peak structure — the paper's main claim — reproduces.
"""

from benchmarks.conftest import build_figure, peak_value, value_at


def test_fig08_throughput_finite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 8, results_dir)

    # Blocking owns the best global throughput.
    blocking_peak_mpl, blocking_peak = data.peak("throughput", "blocking")
    for algorithm in ("immediate_restart", "optimistic"):
        assert blocking_peak > peak_value(data, "throughput", algorithm), (
            f"blocking must beat {algorithm} at its peak"
        )

    # Blocking peaks at a moderate mpl (paper: 25).
    assert 10 <= blocking_peak_mpl <= 50

    # Restart strategies peak at low mpl (paper: 10) ...
    for algorithm in ("immediate_restart", "optimistic"):
        peak_mpl, _ = data.peak("throughput", algorithm)
        assert peak_mpl <= 25, (
            f"{algorithm} should peak early, peaked at {peak_mpl}"
        )

    # ... and decline substantially from peak to mpl=200.
    top = max(mpl for mpl, _ in data.values("throughput", "blocking"))
    for algorithm in ("immediate_restart", "optimistic"):
        assert value_at(data, "throughput", algorithm, top) < (
            0.85 * peak_value(data, "throughput", algorithm)
        )

    # Immediate-restart flattens at the top end (the restart delay caps
    # the actual multiprogramming level).
    series = data.values("throughput", "immediate_restart")
    tail = [value for _, value in series[-3:]]
    assert max(tail) <= 1.25 * min(tail)
