"""Figure 4 — Throughput, low conflict (db=10,000), 1 CPU / 2 disks.

Paper claim: the three algorithms stay close under low conflict even
with finite resources ("blocking outperformed the other two algorithms
by a small amount"), and throughput saturates at the resource ceiling.
"""

from benchmarks.conftest import build_figure, peak_value, value_at


def test_fig04_low_conflict_finite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 4, results_dir)
    algorithms = data.algorithms()
    mpls = [mpl for mpl, _ in data.values("throughput", "blocking")]
    for mpl in mpls:
        values = [
            value_at(data, "throughput", algorithm, mpl)
            for algorithm in algorithms
        ]
        assert max(values) <= 1.35 * min(values), (
            f"algorithms should be close under low conflict at mpl={mpl}"
        )
    # Blocking at least matches the restart strategies at its peak.
    assert peak_value(data, "throughput", "blocking") >= 0.95 * max(
        peak_value(data, "throughput", algorithm)
        for algorithm in algorithms
    )
    # The disk ceiling for 8-page read sets is ~2/(8*0.035) = 7.1 tps;
    # with write traffic it is lower. Nobody can exceed it.
    for algorithm in algorithms:
        assert peak_value(data, "throughput", algorithm) < 7.2
