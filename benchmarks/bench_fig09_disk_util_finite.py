"""Figure 9 — Total and useful disk utilization, 1 CPU / 2 disks.

Paper claims encoded below:
* the disks are the bottleneck: at blocking's throughput peak they are
  nearly saturated (paper: 97.2% total, 92.1% useful at mpl=25);
* useful utilization never exceeds total utilization;
* the restart strategies waste a growing slice of the disks as mpl
  rises: their total-minus-useful gap at mpl=200 is much larger than
  blocking's (blocking wastes little — it blocks instead of redoing
  work).
"""

from benchmarks.conftest import build_figure, max_mpl, value_at


def test_fig09_disk_util_finite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 9, results_dir)
    top = max_mpl(data)

    # Useful <= total everywhere, for everyone.
    for algorithm in data.algorithms():
        for mpl, total in data.values("disk_util", algorithm):
            useful = value_at(data, "disk_util_useful", algorithm, mpl)
            assert useful <= total + 1e-9

    # Disks nearly saturated at blocking's best operating point.
    blocking_peak_mpl, _ = data.sweep.peak("throughput", "blocking")
    total_at_peak = value_at(
        data, "disk_util", "blocking", blocking_peak_mpl
    )
    useful_at_peak = value_at(
        data, "disk_util_useful", "blocking", blocking_peak_mpl
    )
    assert total_at_peak > 0.90, (
        f"disks should be the bottleneck: {total_at_peak:.2f}"
    )
    assert useful_at_peak > 0.80

    # Waste comparison: restarts burn disk time. At moderate mpl the
    # restart strategies waste several times blocking's share; at the
    # very top blocking's own deadlock restarts grow too ("blocking and
    # restarts increase at a much faster rate", paper Exp. 3), so the
    # gap narrows but never inverts.
    def waste(algorithm, mpl):
        return (
            value_at(data, "disk_util", algorithm, mpl)
            - value_at(data, "disk_util_useful", algorithm, mpl)
        )

    assert waste("optimistic", 50) > 2 * waste("blocking", 50)
    assert waste("immediate_restart", 50) > 2 * waste("blocking", 50)
    assert waste("optimistic", top) > waste("blocking", top)
