"""Ablation — deadlock-detection policy for the Blocking algorithm.

The paper detects deadlocks "each time a transaction blocks". Many
real systems instead scan the waits-for graph periodically, trading
detection CPU for deadlock *persistence*: a deadlocked group holds its
locks (and its multiprogramming slots) until the next scan.

This bench compares on-block detection against periodic scans at three
intervals on a contention-heavy configuration. Expected shape: on-block
is competitive with the fastest scan (the two differ mainly in victim
selection), and throughput decays hard as the scan interval grows —
another demonstration that seemingly minor modeling choices move the
curves.
"""

import pytest

from repro.cc.blocking import DETECT_PERIODIC, BlockingCC
from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
PARAMS = SimulationParameters.table2(mpl=100, db_size=300)
INTERVALS = (0.1, 1.0, 5.0)


@pytest.fixture(scope="module")
def detection_results():
    results = {"on_block": run_simulation(PARAMS, "blocking", RUN)}
    for interval in INTERVALS:
        algorithm = BlockingCC(
            detection_mode=DETECT_PERIODIC, detection_interval=interval
        )
        results[f"periodic_{interval}"] = run_simulation(
            PARAMS, algorithm, RUN
        )
    return results


def test_detection_policy_ablation(benchmark, detection_results):
    results = benchmark.pedantic(
        lambda: detection_results, rounds=1, iterations=1
    )
    print()
    for label, result in results.items():
        print(
            f"  {label:14s}: {result.throughput:5.2f} tps  "
            f"restarts/commit={result.mean('restart_ratio'):5.2f}"
        )

    # On-block detection is competitive with the best periodic variant
    # (a very fast scan can edge it by a whisker — it picks victims
    # from whole-graph cycles rather than requester-centric ones — but
    # never beats it meaningfully).
    best_periodic = max(
        results[f"periodic_{interval}"].throughput
        for interval in INTERVALS
    )
    assert results["on_block"].throughput >= 0.85 * best_periodic

    # Longer scan intervals never help (monotone non-increasing within
    # noise) and the slowest scan clearly hurts.
    fast = results[f"periodic_{INTERVALS[0]}"].throughput
    slow = results[f"periodic_{INTERVALS[-1]}"].throughput
    assert slow < 0.9 * fast

    # Everybody still makes progress and stays deadlock-live.
    for result in results.values():
        assert result.totals["commits"] > 50
