"""Figures 18 & 19 — Interactive workload, 5 second internal think time
(1 CPU / 2 disks; external think raised to 11 s).

Paper claims encoded below:
* five seconds of lock-holding thinking cripples blocking, while the
  demand reduction makes the resources behave as if they were
  plentiful: "the throughput and the useful utilization with the
  optimistic algorithm is also better than for blocking" (Figure 18);
* the optimistic peak beats immediate-restart's peak, though
  immediate-restart does better at very high mpl thanks to its
  restart delay's mpl-limiting effect (paper text, Experiment 5).
"""

from benchmarks.conftest import build_figure, max_mpl, peak_value, value_at


def test_fig18_throughput_think5s(benchmark, think_builder, results_dir):
    data = build_figure(benchmark, think_builder, 18, results_dir)
    # The crossover: optimistic now beats blocking.
    assert peak_value(data, "throughput", "optimistic") > peak_value(
        data, "throughput", "blocking"
    )
    # And optimistic's best beats immediate-restart's best.
    assert peak_value(data, "throughput", "optimistic") >= peak_value(
        data, "throughput", "immediate_restart"
    )


def test_fig19_disk_util_think5s(benchmark, think_builder, results_dir):
    data = build_figure(benchmark, think_builder, 19, results_dir)
    top = max_mpl(data)
    # Optimistic extracts more useful disk work than blocking at the
    # top end — blocking's lock-holding thinkers idle the disks.
    assert value_at(data, "disk_util_useful", "optimistic", top) > (
        value_at(data, "disk_util_useful", "blocking", top)
    )
    for algorithm in data.algorithms():
        for mpl, total in data.values("disk_util", algorithm):
            useful = value_at(data, "disk_util_useful", algorithm, mpl)
            assert useful <= total + 1e-9
