"""Figure 7 — Response time mean and standard deviation, infinite
resources.

Paper claims encoded below:
* mean response times follow from the throughput results via the closed
  queuing model (low throughput => high response time);
* the standard deviation of response time is smaller for blocking than
  for immediate-restart over most multiprogramming levels — the
  immediate-restart algorithm's "response time variance is quite
  significant", which matters to users.
"""

import pytest

from benchmarks.conftest import build_figure, majority, value_at


def test_fig07_response_infinite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 7, results_dir)
    mpls = [mpl for mpl, _ in data.values("response_time", "blocking")]

    # Immediate-restart shows larger response-time variability than
    # blocking over most of the swept range.
    pairs = [
        (
            value_at(data, "response_time_std", "immediate_restart", mpl),
            value_at(data, "response_time_std", "blocking", mpl),
        )
        for mpl in mpls
    ]
    assert majority(pairs), (
        "immediate-restart should have the larger response-time std dev "
        f"over most mpls: {pairs}"
    )

    # Closed-model sanity: at the top mpl, the slower algorithm
    # (blocking, which thrashes) has the larger mean response time.
    top = mpls[-1]
    assert value_at(data, "response_time", "blocking", top) > value_at(
        data, "response_time", "optimistic", top
    )

    # "The response times are basically what one would expect, given
    # the throughput results plus the fact that we have employed a
    # closed queuing model" — i.e. the interactive response-time law
    # R = N/X - Z with N=200 terminals and Z=1 s of external thinking.
    N, Z = 200, 1.0
    for algorithm in data.algorithms():
        for mpl in mpls:
            throughput = data.sweep.result(algorithm, mpl).throughput
            expected = N / throughput - Z
            measured = value_at(data, "response_time", algorithm, mpl)
            assert measured == pytest.approx(expected, rel=0.30), (
                f"{algorithm}@mpl={mpl}: R={measured:.2f} but closed "
                f"law predicts {expected:.2f}"
            )
