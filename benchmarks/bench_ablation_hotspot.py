"""Ablation — hotspot skew as a data-contention knob.

The paper tunes data contention with db_size (Experiment 1 vs. the
rest). Later studies in this model family tune it with *access skew*
instead: x% of accesses hit y% of the pages. This bench verifies the
two knobs behave consistently: adding skew at fixed db_size raises
conflict ratios monotonically, blocking still wins at classic (10/80)
skew on finite resources, and *extreme* skew drives blocking into
wait-thrashing — the same "blocking thrashes on waits before restarts
do" phenomenon the paper demonstrates with its infinite-resource
experiment, reached here through the data-contention knob instead.
"""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)

#: (label, hot_fraction, hot_access_prob); None = uniform.
SKEWS = (
    ("uniform", None, None),
    ("mild 20/50", 0.20, 0.50),
    ("classic 10/80", 0.10, 0.80),
    ("extreme 2/80", 0.02, 0.80),
)


@pytest.fixture(scope="module")
def skew_results():
    results = {}
    for label, fraction, prob in SKEWS:
        params = SimulationParameters.table2(
            mpl=50, hot_fraction=fraction, hot_access_prob=prob
        )
        for algorithm in ("blocking", "optimistic"):
            results[(label, algorithm)] = run_simulation(
                params, algorithm, RUN
            )
    return results


def test_hotspot_contention_knob(benchmark, skew_results):
    results = benchmark.pedantic(
        lambda: skew_results, rounds=1, iterations=1
    )
    print()
    for label, _, _ in SKEWS:
        blocking = results[(label, "blocking")]
        optimistic = results[(label, "optimistic")]
        print(
            f"  {label:14s}: blocking {blocking.throughput:5.2f} tps "
            f"(blocks/commit {blocking.mean('block_ratio'):5.2f}), "
            f"optimistic {optimistic.throughput:5.2f} tps "
            f"(restarts/commit {optimistic.mean('restart_ratio'):5.2f})"
        )

    labels = [label for label, _, _ in SKEWS]
    # Monotone contention growth with skew for both conflict signals.
    block_ratios = [
        results[(label, "blocking")].mean("block_ratio")
        for label in labels
    ]
    assert block_ratios == sorted(block_ratios), block_ratios
    restart_ratios = [
        results[(label, "optimistic")].mean("restart_ratio")
        for label in labels
    ]
    assert restart_ratios[-1] > 2 * restart_ratios[0]

    # At classic skew, blocking still wins on this finite-resource
    # system (the Figure 8 ordering survives moderate skew) ...
    assert results[("classic 10/80", "blocking")].throughput > (
        results[("classic 10/80", "optimistic")].throughput
    )
    # ... but extreme skew drives blocking into wait-thrashing (the
    # paper's Tay-consistent result: blocking thrashes on waiting
    # before restarts do), its block ratio exploding and its throughput
    # collapsing below the moderate-skew level.
    extreme = labels[-1]
    assert results[(extreme, "blocking")].mean("block_ratio") > 10
    assert results[(extreme, "blocking")].throughput < 0.5 * (
        results[("classic 10/80", "blocking")].throughput
    )
