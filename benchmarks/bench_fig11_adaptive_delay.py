"""Figure 11 — Adaptive restart delays added to ALL three algorithms
(1 CPU / 2 disks).

Paper claims encoded below:
* giving blocking and optimistic the same adaptive restart delay that
  immediate-restart uses arrests their thrashing at high mpl (the delay
  acts as a crude multiprogramming-level limiter);
* blocking emerges as the clear winner;
* the optimistic algorithm becomes comparable to immediate-restart.

This bench compares against the Figure 8 sweep (no delays), which the
shared builder has already cached — the "thrashing arrested" claim is a
*relative* claim between the two figures.
"""

from benchmarks.conftest import build_figure, peak_value, value_at


def test_fig11_adaptive_delay(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 11, results_dir)
    baseline = figure_builder.figure(8)  # cached sweep, no delays
    top = max(mpl for mpl, _ in data.values("throughput", "blocking"))

    # Blocking is the clear winner at its peak.
    blocking_peak = peak_value(data, "throughput", "blocking")
    for algorithm in ("immediate_restart", "optimistic"):
        assert blocking_peak > 1.05 * peak_value(
            data, "throughput", algorithm
        )

    # Optimistic becomes comparable to immediate-restart (within 25%
    # at the top of the curve).
    optimistic_top = value_at(data, "throughput", "optimistic", top)
    restart_top = value_at(data, "throughput", "immediate_restart", top)
    assert optimistic_top > 0.75 * restart_top

    # Thrashing arrested: optimistic's high-mpl throughput with the
    # delay is no worse than without it (the paper's upper-end rescue).
    assert optimistic_top >= 0.95 * value_at(
        baseline, "throughput", "optimistic", top
    )

    # And the delayed optimistic holds a larger fraction of its own peak
    # than the undelayed one does (the curve flattens instead of diving).
    def retention(figure_data):
        peak = peak_value(figure_data, "throughput", "optimistic")
        return value_at(figure_data, "throughput", "optimistic", top) / peak

    assert retention(data) >= retention(baseline) * 0.95
