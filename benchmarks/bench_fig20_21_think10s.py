"""Figures 20 & 21 — Interactive workload, 10 second internal think time
(1 CPU / 2 disks; external think raised to 21 s).

Paper claims encoded below:
* at 10 seconds of thinking the finite-resource system fully behaves
  like an infinite-resource one: the optimistic algorithm's best
  throughput is "considerably higher" than blocking's (Figure 20);
* its useful utilization is "much higher" than blocking's (Figure 21).
"""

from benchmarks.conftest import build_figure, max_mpl, peak_value, value_at


def test_fig20_throughput_think10s(benchmark, think_builder, results_dir):
    data = build_figure(benchmark, think_builder, 20, results_dir)
    optimistic_peak = peak_value(data, "throughput", "optimistic")
    blocking_peak = peak_value(data, "throughput", "blocking")
    # Considerably higher, not marginal.
    assert optimistic_peak > 1.15 * blocking_peak, (
        f"optimistic ({optimistic_peak:.2f}) should beat blocking "
        f"({blocking_peak:.2f}) clearly at 10 s think time"
    )
    assert optimistic_peak >= peak_value(
        data, "throughput", "immediate_restart"
    )


def test_fig21_disk_util_think10s(benchmark, think_builder, results_dir):
    data = build_figure(benchmark, think_builder, 21, results_dir)
    top = max_mpl(data)
    # Optimistic's useful utilization clearly above blocking's at the
    # top end.
    assert value_at(data, "disk_util_useful", "optimistic", top) > 1.15 * (
        value_at(data, "disk_util_useful", "blocking", top)
    )
    for algorithm in data.algorithms():
        for mpl, total in data.values("disk_util", algorithm):
            useful = value_at(data, "disk_util_useful", algorithm, mpl)
            assert useful <= total + 1e-9
