"""Figure 14 — Throughput with 25 CPUs / 50 disks (Experiment 4).

Paper claims encoded below:
* with this many resources the system "begins to behave somewhat like
  it has infinite resources": the optimistic algorithm's maximum
  throughput edges past blocking's ("although not by very much");
* blocking still thrashes at high mpl (utilization falls as waiting
  rises), while optimistic holds its throughput near the top.

This is the paper's crossover point between the finite-resource and
infinite-resource regimes.
"""

from benchmarks.conftest import build_figure, peak_value, value_at


def test_fig14_throughput_25cpu(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 14, results_dir)
    top = max(mpl for mpl, _ in data.values("throughput", "blocking"))

    # The crossover: optimistic's best at least matches blocking's best.
    optimistic_peak = peak_value(data, "throughput", "optimistic")
    blocking_peak = peak_value(data, "throughput", "blocking")
    assert optimistic_peak >= 0.97 * blocking_peak, (
        f"optimistic ({optimistic_peak:.2f}) should edge past blocking "
        f"({blocking_peak:.2f}) at 25 CPUs / 50 disks"
    )

    # Optimistic clearly dominates at the very high end, where blocking
    # has thrashed.
    assert value_at(data, "throughput", "optimistic", top) > 1.5 * (
        value_at(data, "throughput", "blocking", top)
    )

    # Blocking still thrashes: big drop from its peak to mpl=200.
    assert value_at(data, "throughput", "blocking", top) < (
        0.7 * blocking_peak
    )
