"""Benchmarks of the distributed resource model and the 2PC seam.

Two end-to-end measurements and one overhead guard:

* ``test_distributed_four_node_2pc`` — the full multi-site stack (4
  nodes, exponential network legs, replica reads, two-phase commit)
  through a complete SystemModel run. Gated in CI against
  ``BENCH_distributed.json`` at the 10% threshold, like the engine and
  sweep benchmarks.
* ``test_distributed_one_node_parity_path`` — the same model at one
  node with zero delay: the configuration the golden-parity suite pins
  bit-identical to ``classic``. Reported (not gated) as the
  denominator for the topology's intrinsic cost.
* ``test_classic_commit_seam_overhead`` — the classic model after the
  commit-protocol seam landed. The null protocol adds one truth test
  per commit; this run shadows ``test_full_model_bus_fast_path`` so a
  regression in the seam itself (rather than the distributed tier)
  shows up attributed correctly.
"""

from repro.core import SimulationParameters, SystemModel

FINITE = SimulationParameters(
    db_size=200, min_size=4, max_size=8, write_prob=0.25,
    num_terms=25, mpl=10, ext_think_time=1.0,
    obj_io=0.01, obj_cpu=0.005, num_cpus=1, num_disks=2,
)


def _run(params, seed=11, until=25.0):
    model = SystemModel(params, "blocking", seed=seed)
    model.run_until(until)
    return model.metrics.commits.total


def test_distributed_four_node_2pc(benchmark):
    """4 nodes, 5 ms network legs, RF=2 replica reads, 2PC commits."""
    params = FINITE.with_changes(
        resource_model="distributed", nodes=4, network_delay=0.005,
        replication_factor=2, commit_protocol="2pc",
    )
    assert benchmark(lambda: _run(params)) > 0


def test_distributed_one_node_parity_path(benchmark):
    """The degenerate topology: bit-identical to classic, near-free."""
    params = FINITE.with_changes(resource_model="distributed", nodes=1)
    assert benchmark(lambda: _run(params)) > 0


def test_classic_commit_seam_overhead(benchmark):
    """Classic model through the null commit protocol (the seam cost)."""
    assert benchmark(lambda: _run(FINITE)) > 0
