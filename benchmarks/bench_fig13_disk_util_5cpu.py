"""Figure 13 — Disk utilization with 5 CPUs / 10 disks.

Paper claims encoded below (numbers from the paper's text):
* restart-oriented algorithms drive *total* utilization above
  blocking's — the difference is wasted work (paper maxima: blocking
  61.8% total / 55.5% useful; immediate-restart 72.6% / 44.6%;
  optimistic 94.1% / 46.6%);
* blocking's total-vs-useful gap stays small, the optimistic
  algorithm's grows large.
"""

from benchmarks.conftest import build_figure, max_mpl, value_at


def _max_util(data, metric, algorithm):
    return max(value for _, value in data.values(metric, algorithm))


def test_fig13_disk_util_5cpu(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 13, results_dir)
    top = max_mpl(data)

    # Restart strategies reach higher total utilization than blocking.
    blocking_total = _max_util(data, "disk_util", "blocking")
    assert _max_util(data, "disk_util", "optimistic") > blocking_total
    assert _max_util(data, "disk_util", "immediate_restart") >= (
        0.9 * blocking_total
    )

    # But their useful utilization does not correspondingly lead:
    # blocking's max useful utilization at least matches both.
    blocking_useful = _max_util(data, "disk_util_useful", "blocking")
    for algorithm in ("immediate_restart", "optimistic"):
        assert blocking_useful >= 0.9 * _max_util(
            data, "disk_util_useful", algorithm
        )

    # Waste at the top mpl: optimistic burns far more than blocking.
    def waste(algorithm):
        return (
            value_at(data, "disk_util", algorithm, top)
            - value_at(data, "disk_util_useful", algorithm, top)
        )

    assert waste("optimistic") > 2 * waste("blocking")
