"""Figure 6 — Block and restart ratios under infinite resources.

Paper claims encoded below:
* blocking's thrashing is driven by the *block ratio* (blocked
  transactions per commit), which grows sharply with mpl — not by its
  restart (deadlock) ratio, which stays comparatively small;
* the optimistic algorithm's restart ratio rises quickly with mpl —
  but, per Figure 5, this does not stop its throughput from climbing;
* the immediate-restart ratio flattens with its throughput plateau.
"""

from benchmarks.conftest import build_figure, max_mpl, value_at


def test_fig06_conflict_ratios(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 6, results_dir)
    top = max_mpl(data)

    # Blocking: block ratio grows strongly with mpl...
    low = value_at(data, "block_ratio", "blocking", 5)
    high = value_at(data, "block_ratio", "blocking", top)
    assert high > 5 * max(low, 0.01), (
        f"block ratio should explode with mpl: {low} -> {high}"
    )
    # ... and dominates its own restart (deadlock) ratio at high mpl:
    # thrashing comes from waiting, not from deadlock restarts.
    assert high > value_at(data, "restart_ratio", "blocking", top), (
        "blocking should thrash on blocks, not deadlock restarts"
    )

    # Optimistic restarts climb with mpl.
    assert value_at(data, "restart_ratio", "optimistic", top) > (
        3 * max(value_at(data, "restart_ratio", "optimistic", 5), 0.01)
    )

    # Only blocking ever blocks; restart strategies never wait.
    for algorithm in ("immediate_restart", "optimistic"):
        for mpl, value in data.values("block_ratio", algorithm):
            assert value == 0.0, f"{algorithm} must never block"
