"""End-to-end sweep benchmarks: classic lane vs batched fast lane.

Replication ``r`` of a point is the ``r``-th ``batches``-sized segment
of one seeded trajectory, so the classic lane — one ``run_simulation``
per replication — re-simulates the trajectory prefix as warmup and
spends ``R*w + B*R*(R+1)/2`` batch-units per point, while the batched
lane simulates ``w + R*B`` once and carves every replication from it.
The wall-clock ratio is therefore bounded by that unit ratio: about
``(R+1)/2`` when measurement dominates warmup and ``R`` when warmup
dominates — roughly **3x at R=4** on the acceptance grid below, and
growing without bound in ``R`` (>=5x from R~=8, >=10x from R~=18).
Tape sharing adds a few percent on top by drawing each workload
sequence once per sweep instead of once per replication run.

``check_bench_regression.py`` gates the two ``batched`` benchmarks
against ``BENCH_sweep.json`` and reports the measured classic/batched
speedups; the classic-lane runs exist as the speedup denominators and
as a canary for regressions in the ordinary sequential driver.
"""

from repro.core import RunConfig, SimulationParameters
from repro.experiments import ExperimentConfig, run_sweep

PARAMS = SimulationParameters(
    db_size=200, min_size=4, max_size=8, write_prob=0.25,
    num_terms=10, mpl=5, ext_think_time=0.5,
    obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
)
ALGORITHMS = ("blocking", "immediate_restart", "optimistic")

#: The acceptance grid: 3 algorithms x 5 mpls x 4 replications.
MPLS = (2, 4, 6, 8, 10)
RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=1, seed=31)

#: The many-replication shape (variance studies): 12 segments per
#: point on a narrower grid, where the fused lane's asymptotics show.
DEEP_MPLS = (8,)
DEEP_REPLICATIONS = 12


def _config():
    return ExperimentConfig(
        experiment_id="bench-sweep",
        title="Sweep backend benchmark",
        figures=(0,),
        params=PARAMS,
        algorithms=ALGORITHMS,
        mpls=MPLS,
        metrics=("throughput",),
    )


def _sweep(backend, replications, mpls=MPLS):
    sweep = run_sweep(
        _config(), run=RUN, mpls=mpls,
        backend=backend, replications=replications,
    )
    assert all(
        status.status == "ok"
        for status in sweep.replicate_statuses.values()
    )
    return sweep


def test_sweep_classic_lane_r4(benchmark):
    sweep = benchmark.pedantic(
        lambda: _sweep("classic", 4), rounds=1, iterations=1
    )
    assert len(sweep.replicate_statuses) == 3 * 5 * 4


def test_sweep_batched_lane_r4(benchmark):
    sweep = benchmark.pedantic(
        lambda: _sweep("batched", 4), rounds=1, iterations=1
    )
    assert len(sweep.replicate_statuses) == 3 * 5 * 4


def test_sweep_classic_lane_r12(benchmark):
    sweep = benchmark.pedantic(
        lambda: _sweep("classic", DEEP_REPLICATIONS, mpls=DEEP_MPLS),
        rounds=1, iterations=1,
    )
    assert len(sweep.replicate_statuses) == 3 * DEEP_REPLICATIONS


def test_sweep_batched_lane_r12(benchmark):
    sweep = benchmark.pedantic(
        lambda: _sweep("batched", DEEP_REPLICATIONS, mpls=DEEP_MPLS),
        rounds=1, iterations=1,
    )
    assert len(sweep.replicate_statuses) == 3 * DEEP_REPLICATIONS
