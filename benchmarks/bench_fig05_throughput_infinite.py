"""Figure 5 — Throughput under infinite resources (Experiment 2).

Paper claims encoded below:
* the optimistic algorithm's throughput keeps increasing with the
  multiprogramming level — restarted transactions are simply replaced
  by new ones, so the effective mpl stays high;
* blocking starts *thrashing* beyond a knee: throughput at mpl=200 falls
  well below its peak;
* immediate-restart reaches a plateau — the adaptive restart delay
  caps the actual number of active transactions.
"""

from benchmarks.conftest import build_figure, peak_value, value_at


def test_fig05_throughput_infinite(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 5, results_dir)

    # Optimistic dominates at the top end and does not thrash.
    top = max(mpl for mpl, _ in data.values("throughput", "optimistic"))
    optimistic_top = value_at(data, "throughput", "optimistic", top)
    assert optimistic_top >= 0.90 * peak_value(
        data, "throughput", "optimistic"
    ), "optimistic should keep climbing, not thrash"
    assert optimistic_top > 2.0 * value_at(
        data, "throughput", "blocking", top
    ), "optimistic should dominate blocking at very high mpl"

    # Blocking thrashes: mpl=200 throughput far below its peak.
    blocking_peak_mpl, blocking_peak = data.peak("throughput", "blocking")
    assert blocking_peak_mpl < top
    assert value_at(data, "throughput", "blocking", top) < (
        0.6 * blocking_peak
    ), "blocking should thrash beyond its knee under infinite resources"

    # Immediate-restart plateaus: the last three points are flat.
    series = data.values("throughput", "immediate_restart")
    tail = [value for _, value in series[-3:]]
    assert max(tail) <= 1.15 * min(tail), (
        f"immediate-restart should plateau, got tail {tail}"
    )
    # ... at a level between blocking's collapse and optimistic's climb.
    assert tail[-1] > value_at(data, "throughput", "blocking", top)
    assert tail[-1] < optimistic_top
