"""Ablation — restart-delay sensitivity for immediate-restart.

The paper chose the *adaptive* delay "after performing a sensitivity
analysis that showed us that the performance of immediate-restarts is
sensitive to the restart delay time, particularly in the infinite
resource case. Our experiments indicated that a delay of about one
transaction time is best, and that throughput begins to drop off
rapidly when the delay exceeds more than a few transaction times."

This bench redoes that sensitivity analysis with fixed delays spanning
four orders of magnitude around one transaction time, plus the adaptive
policy, and checks the paper's claims:

* a delay near one transaction time beats both a near-zero delay and a
  very large delay;
* very large delays collapse throughput;
* the adaptive delay lands near the fixed optimum.
"""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
#: Infinite resources, a high multiprogramming level: the regime the
#: paper says is most delay-sensitive.
MPL = 100

#: Mean response time at this operating point is a few seconds; one
#: "transaction time" of pure service is ~0.5 s.
FIXED_DELAYS = (0.05, 0.5, 2.0, 10.0, 60.0)


def params_with_delay(delay):
    return SimulationParameters.table2(
        num_cpus=None,
        num_disks=None,
        mpl=MPL,
        restart_delay_mode="fixed_all",
        restart_delay=delay,
    )


@pytest.fixture(scope="module")
def sensitivity():
    results = {}
    for delay in FIXED_DELAYS:
        result = run_simulation(
            params_with_delay(delay), "immediate_restart", RUN
        )
        results[delay] = result.throughput
    adaptive = run_simulation(
        SimulationParameters.table2(num_cpus=None, num_disks=None, mpl=MPL),
        "immediate_restart",
        RUN,
    )
    results["adaptive"] = adaptive.throughput
    return results


def test_restart_delay_sensitivity(benchmark, sensitivity):
    results = benchmark.pedantic(
        lambda: sensitivity, rounds=1, iterations=1
    )
    print()
    for delay, tps in results.items():
        print(f"  restart_delay={delay!s:>9}: {tps:7.2f} tps")

    fixed = {d: results[d] for d in FIXED_DELAYS}
    best_delay = max(fixed, key=fixed.get)
    # The optimum sits in the around-one-transaction-time region, not at
    # the extremes.
    assert best_delay not in (FIXED_DELAYS[0], FIXED_DELAYS[-1]), (
        f"optimum delay should be interior, got {best_delay}"
    )
    # Very large delays drop off hard.
    assert fixed[FIXED_DELAYS[-1]] < 0.5 * fixed[best_delay]
    # The adaptive policy is competitive with the fixed optimum.
    assert results["adaptive"] > 0.7 * fixed[best_delay]
