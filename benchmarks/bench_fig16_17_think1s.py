"""Figures 16 & 17 — Interactive workload, 1 second internal think time
(1 CPU / 2 disks; external think raised to 3 s).

Paper claims encoded below:
* at only 1 second of internal thinking, the resources are still
  effectively scarce and wasted restarts still hurt: "blocking performs
  better" (Figure 16);
* utilizations (Figure 17): useful <= total for everyone, and the
  restart strategies waste more of the disks than blocking does.
"""

from benchmarks.conftest import build_figure, max_mpl, peak_value, value_at


def test_fig16_throughput_think1s(benchmark, think_builder, results_dir):
    data = build_figure(benchmark, think_builder, 16, results_dir)
    # Blocking still wins at 1 s of internal thinking.
    blocking_peak = peak_value(data, "throughput", "blocking")
    assert blocking_peak >= peak_value(data, "throughput", "optimistic")
    assert blocking_peak >= peak_value(
        data, "throughput", "immediate_restart"
    )


def test_fig17_disk_util_think1s(benchmark, think_builder, results_dir):
    data = build_figure(benchmark, think_builder, 17, results_dir)
    top = max_mpl(data)
    for algorithm in data.algorithms():
        for mpl, total in data.values("disk_util", algorithm):
            useful = value_at(data, "disk_util_useful", algorithm, mpl)
            assert useful <= total + 1e-9

    def waste(algorithm):
        return (
            value_at(data, "disk_util", algorithm, top)
            - value_at(data, "disk_util_useful", algorithm, top)
        )

    assert waste("optimistic") > waste("blocking")
