"""Microbenchmarks of the simulation substrates.

These are true pytest-benchmark measurements (many rounds) of the hot
paths everything else is built on: the event loop, the process
machinery, resource queueing, the lock manager, deadlock detection, and
workload generation. They catch performance regressions that would make
the figure sweeps intolerably slow.
"""

from repro.cc import BlockingCC, LockManager, LockMode, build_waits_for
from repro.core import SimulationParameters, WorkloadGenerator
from repro.des import Environment, Resource, StreamFactory

from tests.cc.conftest import FakeTx


def test_event_loop_throughput(benchmark):
    """Schedule and drain 10,000 timeouts."""

    def run():
        env = Environment()
        for i in range(10_000):
            env.timeout(i * 0.001)
        env.run()
        return env.now

    assert benchmark(run) > 0


def test_process_switching(benchmark):
    """Two processes ping-ponging through 2,000 timeouts."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(1000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.process(ticker(env))
        env.run()
        return env.now

    benchmark(run)


def test_resource_contention(benchmark):
    """100 processes contending for a 4-server pool."""

    def run():
        env = Environment()
        pool = Resource(env, capacity=4)

        def worker(env):
            for _ in range(10):
                with pool.request() as req:
                    yield req
                    yield env.timeout(0.01)

        for _ in range(100):
            env.process(worker(env))
        env.run()
        return env.now

    benchmark(run)


def test_lock_manager_acquire_release(benchmark):
    """1,000 uncontended acquire/release cycles."""
    env = Environment()

    def run():
        lm = LockManager(env)
        txs = [FakeTx() for _ in range(10)]
        for i in range(1000):
            tx = txs[i % 10]
            lm.acquire(tx, i % 50, LockMode.SHARED)
            if i % 10 == 9:
                lm.release_all(tx)
        for tx in txs:
            lm.release_all(tx)

    benchmark(run)


def test_deadlock_detection_cost(benchmark):
    """Waits-for graph build over a loaded lock table."""
    env = Environment()
    lm = LockManager(env)
    holders = [FakeTx() for _ in range(50)]
    for i, tx in enumerate(holders):
        lm.acquire(tx, i, LockMode.EXCLUSIVE)
    waiters = [FakeTx() for _ in range(50)]
    for i, tx in enumerate(waiters):
        lm.acquire(tx, i, LockMode.EXCLUSIVE)  # all queued

    def run():
        return build_waits_for(lm)

    graph = benchmark(run)
    assert len(graph) == 50


def test_workload_generation_rate(benchmark):
    """Generate 1,000 transactions with Table 2 parameters."""
    gen = WorkloadGenerator(
        SimulationParameters.table2(), StreamFactory(1)
    )

    def run():
        for _ in range(1000):
            gen.new_transaction(0)

    benchmark(run)


def test_full_model_bus_fast_path(benchmark):
    """A complete SystemModel run with only the default subscribers.

    End-to-end guard of the instrumentation bus's near-zero-overhead
    guarantee: every transaction lifecycle event flows through the bus
    to the metrics subscriber, and the optional high-volume kinds
    (commit points, CC grants, resource busy/idle) must be skipped
    before their fields are built.  ``BENCH_engine.json`` at the repo
    root pins a reference baseline; CI uploads each run's numbers as an
    artifact for cross-commit comparison, and
    ``check_bench_regression.py`` fails the build if this benchmark
    regresses more than 10% against the baseline.
    """
    from repro.core import SystemModel

    params = SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=25, mpl=10, ext_think_time=1.0,
        obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
    )

    def run():
        model = SystemModel(params, "blocking", seed=11)
        model.run_until(25.0)
        return model.metrics.commits.total

    assert benchmark(run) > 0


def test_blocking_cc_request_path(benchmark):
    """The lock-request fast path through a full BlockingCC."""
    env = Environment()

    def run():
        cc = BlockingCC().attach(env)
        txs = [FakeTx() for _ in range(20)]
        for i in range(500):
            tx = txs[i % 20]
            cc.read_request(tx, (i * 7) % 200)
            if i % 20 == 19:
                cc.finalize_commit(tx)
        for tx in txs:
            cc.finalize_commit(tx)

    benchmark(run)
