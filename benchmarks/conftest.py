"""Shared infrastructure for the figure-reproduction benchmarks.

Every ``bench_figNN_*.py`` regenerates one (or one pair) of the paper's
figures at laptop-scale statistics, prints the same series the paper
plots, saves the table to ``benchmarks/results/``, and asserts the
figure's qualitative *shape* (who wins, where the peaks and crossovers
are). Absolute numbers are not compared — our substrate is a
reimplementation and the batch lengths are scaled down — but each shape
assertion encodes the claim the paper makes with that figure.

Sweeps are shared across figures of the same experiment (Figures 5, 6
and 7 simulate once), and across the whole pytest session.
"""

import os

import pytest

from repro.core import RunConfig
from repro.experiments import FigureBuilder, sweep_report

#: Statistics profile for the standard experiments: smaller than the
#: paper's 20-large-batch runs, big enough for stable orderings.
BENCH_RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)

#: Interactive workloads (Experiment 5) have multi-second think times and
#: response times, so they need longer batches to settle.
THINK_RUN = RunConfig(batches=3, batch_time=60.0, warmup_batches=1, seed=42)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def figure_builder():
    """Shared builder for Experiments 1-4 (one sweep per experiment)."""
    return FigureBuilder(run=BENCH_RUN)


@pytest.fixture(scope="session")
def think_builder():
    """Shared builder for Experiment 5's interactive workloads."""
    return FigureBuilder(run=THINK_RUN)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_figure(data, results_dir):
    """Persist a figure's table + series to benchmarks/results/."""
    path = os.path.join(results_dir, f"figure{data.figure:02d}.txt")
    with open(path, "w") as f:
        f.write(sweep_report(data.sweep, with_plots=True))
        f.write("\n\n")
        f.write(data.describe())
        f.write("\n")
    return path


def build_figure(benchmark, builder, number, results_dir):
    """Benchmark-wrapped figure build (one round; sweeps are cached).

    Every point of the sweep is additionally checked against the
    operational-analysis bounds (`repro.analysis.bounds`) — a universal
    oracle: no concurrency control can beat the queueing theory.
    """
    data = benchmark.pedantic(
        lambda: builder.figure(number), rounds=1, iterations=1
    )
    from repro.analysis import check_result_against_bounds

    for result in data.sweep.results.values():
        check_result_against_bounds(result)
    save_figure(data, results_dir)
    print()
    print(data.describe())
    return data


# ---- shape-assertion helpers -------------------------------------------


def peak_value(data, metric, algorithm):
    """Maximum of a series over the swept mpls."""
    return data.peak(metric, algorithm)[1]


def value_at(data, metric, algorithm, mpl):
    return dict(data.values(metric, algorithm))[mpl]


def majority(pairs):
    """True if the first element wins in more than half the pairs."""
    wins = sum(1 for a, b in pairs if a > b)
    return wins > len(pairs) / 2


def max_mpl(data):
    metric = next(iter(data.series))
    algorithm = data.algorithms()[0]
    return max(mpl for mpl, _ in data.values(metric, algorithm))
