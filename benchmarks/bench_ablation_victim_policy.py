"""Ablation — deadlock-victim selection policy for the Blocking
algorithm.

The paper restarts "the youngest transaction in the deadlock cycle".
This ablation compares that choice against restarting the OLDEST cycle
member and against always restarting the REQUESTER, on the Table 2
finite-resource configuration at a contention-heavy multiprogramming
level.

Expectation: youngest-victim wastes the least work (the youngest
transaction has, in expectation, invested the least), so it should not
lose to oldest-victim; all policies must preserve correctness (their
committed histories stay serializable — covered by the test suite) and
make progress.
"""

import pytest

from repro.cc.blocking import BlockingCC
from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
PARAMS = SimulationParameters.table2(mpl=100)
POLICIES = ("youngest", "oldest", "requester")


@pytest.fixture(scope="module")
def policy_results():
    results = {}
    for policy in POLICIES:
        algorithm = BlockingCC(victim_policy=policy)
        results[policy] = run_simulation(PARAMS, algorithm, RUN)
    return results


def test_victim_policy_ablation(benchmark, policy_results):
    results = benchmark.pedantic(
        lambda: policy_results, rounds=1, iterations=1
    )
    print()
    for policy, result in results.items():
        print(
            f"  victim={policy:10s}: {result.throughput:6.2f} tps, "
            f"restarts/commit={result.mean('restart_ratio'):.3f}"
        )
    # Every policy makes healthy progress.
    for policy, result in results.items():
        assert result.totals["commits"] > 50, f"{policy} barely commits"
        assert result.throughput > 0.5 * results["youngest"].throughput
    # The paper's choice does not lose to oldest-victim (which maximizes
    # wasted work) beyond noise.
    assert results["youngest"].throughput >= (
        0.9 * results["oldest"].throughput
    )
