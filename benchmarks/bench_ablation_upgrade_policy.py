"""Ablation — lock-upgrade policy for the Blocking algorithm.

The paper's locking "upgrades" read locks to write locks at write time,
which creates the classic upgrade-upgrade deadlock (two readers of one
object both upgrading). The alternative — take the exclusive lock at
the FIRST read of any object the transaction will later write — removes
that deadlock class entirely at the price of longer exclusive holds.

Expected shape: immediate-exclusive suffers (weakly) fewer deadlock
restarts; neither policy collapses relative to the other; the committed
histories of both stay serializable (covered by the test suite).
"""

import pytest

from repro.cc.blocking import IMMEDIATE_EXCLUSIVE, BlockingCC
from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
#: Write-heavy to make upgrades (and their deadlocks) frequent.
PARAMS = SimulationParameters.table2(mpl=100, write_prob=0.5)


@pytest.fixture(scope="module")
def policy_results():
    return {
        "upgrade": run_simulation(PARAMS, "blocking", RUN),
        "immediate_exclusive": run_simulation(
            PARAMS,
            BlockingCC(write_lock_policy=IMMEDIATE_EXCLUSIVE),
            RUN,
        ),
    }


def test_upgrade_policy_ablation(benchmark, policy_results):
    results = benchmark.pedantic(
        lambda: policy_results, rounds=1, iterations=1
    )
    print()
    for label, result in results.items():
        print(
            f"  {label:20s}: {result.throughput:5.2f} tps  "
            f"restarts/commit={result.mean('restart_ratio'):5.3f}  "
            f"blocks/commit={result.mean('block_ratio'):5.2f}"
        )

    upgrade = results["upgrade"]
    immediate = results["immediate_exclusive"]
    # Both policies stay productive and in one band.
    assert immediate.throughput > 0.5 * upgrade.throughput
    assert upgrade.throughput > 0.5 * immediate.throughput
    # Immediate exclusive lowers the deadlock-restart rate (upgrade
    # deadlocks are the dominant class in a write-heavy mix).
    assert immediate.mean("restart_ratio") <= (
        upgrade.mean("restart_ratio")
    )
