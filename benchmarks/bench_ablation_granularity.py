"""Ablation — concurrency-control granularity (the Ries knob).

The paper locks at object (= page) granularity. Its model descends from
Ries & Stonebraker's granularity studies [Ries77, Ries79], which asked:
how many lockable granules should a database have? Too few, and
unrelated transactions collide on the same granule (false sharing); so
few lock-manager resources are rarely worth it. This bench sweeps the
granule count on the Table 2 system and checks the classic shape:

* throughput rises monotonically (within noise) with granule count;
* a one-granule database serializes all writers (throughput collapses
  toward the serial rate), and very coarse grains additionally thrash
  on upgrade deadlocks (every reader of a granule upgrades the same
  lock);
* at mpl=25 with 8-page transactions even 100 granules still pays a
  false-sharing penalty versus the paper's object-level locking —
  Ries's "coarse is usually fine" conclusion assumed far fewer
  concurrent transactions than this operating point runs.
"""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
GRANULES = (1, 10, 100, 1000)  # 1000 == object-level for db_size=1000


@pytest.fixture(scope="module")
def granularity_results():
    results = {}
    for granules in GRANULES:
        params = SimulationParameters.table2(
            mpl=25, lock_granules=granules
        )
        results[granules] = run_simulation(params, "blocking", RUN)
    return results


def test_granularity_ablation(benchmark, granularity_results):
    results = benchmark.pedantic(
        lambda: granularity_results, rounds=1, iterations=1
    )
    print()
    for granules, result in results.items():
        print(
            f"  granules={granules:5d}: {result.throughput:5.2f} tps  "
            f"blocks/commit={result.mean('block_ratio'):6.2f}  "
            f"restarts/commit={result.mean('restart_ratio'):5.2f}"
        )

    throughputs = [results[g].throughput for g in GRANULES]
    # Monotone improvement with finer granularity (within 5% noise).
    for coarse, fine in zip(throughputs, throughputs[1:]):
        assert fine >= coarse * 0.95

    # One granule: writers serialize; a small fraction of fine grain.
    assert throughputs[0] < 0.3 * throughputs[-1]

    # Contention signals fall sharply once granules outnumber the
    # transaction footprint (blocks and deadlock restarts both).
    assert results[100].mean("block_ratio") < 0.5 * (
        results[10].mean("block_ratio")
    )
    assert results[1000].mean("block_ratio") < 0.2 * (
        results[100].mean("block_ratio")
    )
    assert results[1000].mean("restart_ratio") < 0.2 * (
        results[100].mean("restart_ratio")
    )

    # Even 100 granules still pays a visible false-sharing penalty at
    # this mpl: object-level locking is the right default here.
    assert results[1000].throughput > 1.5 * results[100].throughput
