"""Figure 15 — Disk utilization with 25 CPUs / 50 disks.

Paper claims encoded below (numbers from the paper's text):
* utilizations are low — at blocking's best point the paper saw 33.5%
  total / 30.1% useful; "with useful utilizations in the 30% range,
  the system begins to behave somewhat like it has infinite
  resources";
* the optimistic algorithm runs the disks much harder (62.6% total)
  for similar useful utilization (32.6%) — wasted resources are
  affordable here, which is exactly why optimistic wins Figure 14;
* with blocking, utilization *decreases* at high mpl (waiting
  transactions keep the disks idle — thrashing by blocking, not by
  restarts).
"""

from benchmarks.conftest import build_figure, max_mpl, value_at


def test_fig15_disk_util_25cpu(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 15, results_dir)
    top = max_mpl(data)

    # Low-utilization regime at blocking's best throughput point.
    blocking_peak_mpl, _ = data.sweep.peak("throughput", "blocking")
    blocking_total = value_at(
        data, "disk_util", "blocking", blocking_peak_mpl
    )
    assert blocking_total < 0.60, (
        f"the 25/50 configuration should be lightly utilized, got "
        f"{blocking_total:.2f}"
    )

    # Optimistic drives total utilization well above blocking's at the
    # top end while wasting most of the difference.
    assert value_at(data, "disk_util", "optimistic", top) > 1.5 * (
        value_at(data, "disk_util", "blocking", top)
    )
    optimistic_waste = (
        value_at(data, "disk_util", "optimistic", top)
        - value_at(data, "disk_util_useful", "optimistic", top)
    )
    assert optimistic_waste > 0.10

    # Blocking's utilization decreases as mpl grows past the knee:
    # blocked transactions keep the disks idle.
    series = dict(data.values("disk_util", "blocking"))
    assert series[top] < max(series.values())
