"""Figure 12 — Throughput with 5 CPUs / 10 disks (Experiment 4).

Paper claims encoded below:
* the behavior is "fairly similar" to the 1 CPU / 2 disk case:
  blocking again provides the highest overall throughput;
* for large mpls the immediate-restart strategy beats blocking, but its
  plateau stays below blocking's peak.
"""

from benchmarks.conftest import build_figure, peak_value, value_at


def test_fig12_throughput_5cpu(benchmark, figure_builder, results_dir):
    data = build_figure(benchmark, figure_builder, 12, results_dir)
    top = max(mpl for mpl, _ in data.values("throughput", "blocking"))

    # Blocking still has the best global peak.
    blocking_peak = peak_value(data, "throughput", "blocking")
    for algorithm in ("immediate_restart", "optimistic"):
        assert blocking_peak >= peak_value(data, "throughput", algorithm)

    # Immediate-restart's plateau beats blocking at the very top end
    # (blocking thrashes; the restart delay caps IR's actual mpl) ...
    assert value_at(data, "throughput", "immediate_restart", top) > (
        value_at(data, "throughput", "blocking", top)
    )
    # ... but never beats blocking's best point.
    assert blocking_peak > value_at(
        data, "throughput", "immediate_restart", top
    )

    # More resources, more throughput: everyone's peak beats the
    # 1 CPU / 2 disk ceiling of ~7.1 tps.
    for algorithm in data.algorithms():
        assert peak_value(data, "throughput", algorithm) > 7.2
