"""Table 2 — the paper's base parameter settings, plus simulator micro-cost.

Verifies that the preset the whole evaluation is built on matches the
paper's Table 2 exactly, and benchmarks the raw cost of simulating the
base configuration (events per wall-second is the simulator's currency).
"""

from repro.core import PAPER_MPLS, SimulationParameters, SystemModel


def test_table2_settings_benchmark(benchmark):
    params = benchmark(SimulationParameters.table2)
    assert params.db_size == 1000
    assert (params.min_size, params.max_size) == (4, 12)
    assert params.tran_size == 8.0
    assert params.write_prob == 0.25
    assert params.num_terms == 200
    assert params.ext_think_time == 1.0
    assert params.obj_io == 0.035
    assert params.obj_cpu == 0.015
    assert (params.num_cpus, params.num_disks) == (1, 2)
    assert PAPER_MPLS == (5, 10, 25, 50, 75, 100, 200)


def test_base_configuration_simulation_cost(benchmark):
    """Wall cost of 10 simulated seconds of the Table 2 base system."""

    def simulate():
        model = SystemModel(
            SimulationParameters.table2(mpl=25), "blocking", seed=1
        )
        model.run_until(10.0)
        return model.metrics.commits.total

    commits = benchmark(simulate)
    assert commits > 0
