"""Ablation — the extension algorithms vs. the paper's three.

The paper's framework "is intended to support any concurrency control
algorithm"; its survey cites the locking-vs-timestamp-ordering
comparisons of [Gall82] and [Lin83]. This bench runs the full
algorithm roster — the paper's three plus basic TO, multiversion TO,
wound-wait and wait-die — on the Table 2 finite-resource configuration
at a moderate and a high multiprogramming level, and checks the
coarse expectations:

* at moderate mpl all lock- or timestamp-based algorithms land in the
  same throughput band (conflicts are manageable);
* the deadlock-prevention variants (wound-wait, wait-die) behave like
  blocking-with-extra-restarts: between blocking and immediate-restart;
* MVTO's reads never block (block ratio identically zero).
"""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=42)
ALGORITHMS = (
    "blocking",
    "immediate_restart",
    "optimistic",
    "basic_to",
    "mvto",
    "wound_wait",
    "wait_die",
)


@pytest.fixture(scope="module")
def roster_results():
    results = {}
    for mpl in (25, 100):
        params = SimulationParameters.table2(mpl=mpl)
        for algorithm in ALGORITHMS:
            results[(algorithm, mpl)] = run_simulation(
                params, algorithm, RUN
            )
    return results


def test_extension_roster(benchmark, roster_results):
    results = benchmark.pedantic(
        lambda: roster_results, rounds=1, iterations=1
    )
    print()
    for mpl in (25, 100):
        print(f"  mpl={mpl}:")
        for algorithm in ALGORITHMS:
            result = results[(algorithm, mpl)]
            print(
                f"    {algorithm:18s} {result.throughput:6.2f} tps  "
                f"restarts/commit={result.mean('restart_ratio'):5.2f}  "
                f"blocks/commit={result.mean('block_ratio'):5.2f}"
            )

    # Everyone is productive at moderate contention, within a band.
    moderate = [results[(a, 25)].throughput for a in ALGORITHMS]
    assert min(moderate) > 0.6 * max(moderate)

    # Blocking has the best throughput at both operating points.
    for mpl in (25, 100):
        best = max(results[(a, mpl)].throughput for a in ALGORITHMS)
        assert results[("blocking", mpl)].throughput >= 0.93 * best

    # The prevention variants sit between blocking and immediate-restart
    # at high contention (they block like 2PL but also restart).
    for variant in ("wound_wait", "wait_die"):
        tps = results[(variant, 100)].throughput
        assert tps >= 0.85 * results[("immediate_restart", 100)].throughput

    # MVTO never blocks a read.
    for mpl in (25, 100):
        assert results[("mvto", mpl)].mean("block_ratio") == 0.0
